"""Cluster state: columnar node ledgers with exact memory accounting.

All memory book-keeping is integer MB.  Three per-node ledgers describe the
state:

* ``local_used_mb`` — DRAM consumed by the job running *on* that node,
* ``lent_mb``       — DRAM lent to jobs running on *other* nodes,
* ``free local``    — ``capacity − local_used − lent`` (derived).

Invariants (asserted by :meth:`Cluster.check_invariants` and
property-tested):

* every ledger entry is non-negative and ``local_used + lent ≤ capacity``;
* the sum of all lent memory equals the sum of all borrowed memory across
  the live :class:`~repro.cluster.allocation.JobAllocation` records;
* a node runs at most one job (nodes are CPU-exclusive, paper §2.1).

Incremental aggregates (this module's hot-path contract): every mutator
(:meth:`Cluster.apply` / :meth:`~Cluster.release` /
:meth:`~Cluster.grow_local` / :meth:`~Cluster.shrink_local` /
:meth:`~Cluster.add_remote` / :meth:`~Cluster.remove_remote`) updates
running scalar aggregates (``busy_count``, ``lent_total``,
``local_used_total``, ``memory_node_count``, ``startable_count``) and a
maintained ``free_local`` vector in place, so per-event accounting,
scheduling pre-checks, backfill shadow estimation and telemetry sampling
are O(changed nodes) instead of O(n_nodes).
:meth:`~Cluster.recompute_aggregates` is the brute-force path that
:meth:`~Cluster.check_invariants` (and the property tests) cross-check
the incremental values against.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.config import SystemConfig
from ..core.errors import AllocationError
from ..obs.profiling import perf_section
from .allocation import JobAllocation
from .node import Node

#: Bound on the free-ledger delta log.  When it overflows, the oldest
#: entries are dropped and consumers that fell behind (see
#: :meth:`Cluster.free_changes_since`) rebuild their index from scratch.
FREE_LOG_LIMIT = 4096


class Cluster:
    """Mutable cluster state shared by scheduler and allocation policies."""

    def __init__(self, config: SystemConfig):
        self.config = config
        n = config.n_nodes
        n_large = config.n_large_nodes
        # Large nodes occupy the lowest indices (deterministic layout).
        self.is_large = np.zeros(n, dtype=bool)
        self.is_large[:n_large] = True
        self.capacity_mb = np.where(
            self.is_large, config.large_mem_mb, config.normal_mem_mb
        ).astype(np.int64)
        self.local_used_mb = np.zeros(n, dtype=np.int64)
        self.lent_mb = np.zeros(n, dtype=np.int64)
        self.busy = np.zeros(n, dtype=bool)
        self.job_on_node = np.full(n, -1, dtype=np.int64)
        #: live allocations by job id
        self.allocations: Dict[int, JobAllocation] = {}
        #: per lender node: job id -> MB currently borrowed from it
        self.lender_jobs: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._torus = None
        self._distance_rows: Dict[int, np.ndarray] = {}
        # ---- incremental aggregates --------------------------------------
        #: number of busy (job-running) nodes
        self.busy_count: int = 0
        #: number of busy *large* nodes (per-class idle counts for backfill)
        self.busy_large_count: int = 0
        #: total DRAM consumed by jobs on their own nodes (MB)
        self.local_used_total: int = 0
        #: total DRAM lent to remote borrowers (MB)
        self.lent_total: int = 0
        #: nodes that lent more than half their capacity
        self.memory_node_count: int = 0
        #: idle nodes that are not memory nodes (may start a job)
        self.startable_count: int = n
        self._total_capacity: int = int(self.capacity_mb.sum())
        self._n_large: int = int(n_large)
        # Maintained free-DRAM vector; exposed through a read-only view so
        # consumers cannot desync it (they copy before scratch mutations).
        self._free_local = self.capacity_mb - self.local_used_mb - self.lent_mb
        self._free_view = self._free_local.view()
        self._free_view.flags.writeable = False
        self._memnode = np.zeros(n, dtype=bool)
        self._memnode_view = self._memnode.view()
        self._memnode_view.flags.writeable = False
        #: bumped once per node whose free DRAM changed (index generation)
        self.generation: int = 0
        # Delta log: nodes touched at generations [_free_log_base, generation)
        self._free_log: List[int] = []
        self._free_log_base: int = 0
        #: demand-ledger listeners, called as ``listener(cluster, lenders)``
        #: whenever the borrow layout or total allocation of a job changes
        #: (``lenders`` = the job's lender nodes whose demand may change)
        self._demand_listeners: List[Callable[["Cluster", Sequence[int]], None]] = []

    # ------------------------------------------------------------------
    # Interconnect (lazy; used by topology-aware lending and the optional
    # distance term of the slowdown model)
    # ------------------------------------------------------------------
    @property
    def torus(self):
        if self._torus is None:
            from .interconnect import Torus

            self._torus = Torus.for_nodes(self.config.n_nodes)
        return self._torus

    def distance_row(self, node: int) -> np.ndarray:
        """Hop distances from ``node`` to every node (cached per node)."""
        row = self._distance_rows.get(node)
        if row is None:
            row = self.torus.distance_row(node, self.n_nodes)
            self._distance_rows[node] = row
        return row

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    def node(self, index: int) -> Node:
        return Node(self, index)

    def free_local(self) -> np.ndarray:
        """Physically free DRAM per node (maintained read-only vector)."""
        return self._free_view

    def is_memory_node(self) -> np.ndarray:
        """Mask of nodes that lent more than half their capacity."""
        return self._memnode_view

    def startable(self) -> np.ndarray:
        """Mask of nodes on which a new job may start (idle, not a memory node)."""
        return (~self.busy) & ~self._memnode

    @property
    def free_local_total(self) -> int:
        """Total physically free DRAM across all nodes (MB, O(1))."""
        return self._total_capacity - self.local_used_total - self.lent_total

    @property
    def allocated_total(self) -> int:
        """Total allocated DRAM, local plus lent (MB, O(1))."""
        return self.local_used_total + self.lent_total

    def n_idle(self) -> int:
        return self.n_nodes - self.busy_count

    def total_capacity_mb(self) -> int:
        return self._total_capacity

    def total_allocated_mb(self) -> int:
        return self.local_used_total + self.lent_total

    def fitting_idle_count(self, request_mb: int) -> int:
        """Idle nodes whose *capacity* covers ``request_mb`` (O(1)).

        Capacity takes exactly two values (normal/large node classes), so
        the count follows from the per-class idle tallies.
        """
        idle_large = self._n_large - self.busy_large_count
        idle_normal = (self.n_nodes - self._n_large) - (
            self.busy_count - self.busy_large_count
        )
        count = 0
        if self.config.large_mem_mb >= request_mb:
            count += idle_large
        if self.config.normal_mem_mb >= request_mb:
            count += idle_normal
        return count

    def memory_utilization(self) -> float:
        cap = self.total_capacity_mb()
        return self.total_allocated_mb() / cap if cap else 0.0

    def cpu_utilization(self) -> float:
        return float(self.busy_count) / self.n_nodes if self.n_nodes else 0.0

    def borrowers_of(self, lender: int) -> Dict[int, int]:
        """Jobs currently borrowing from ``lender`` (job id -> MB)."""
        return self.lender_jobs[lender]

    def free_changes_since(self, generation: int) -> Optional[List[int]]:
        """Nodes whose free DRAM changed since ``generation``.

        Returns ``None`` when the delta log no longer reaches back that
        far (the consumer must rebuild its index from scratch).  Entries
        may repeat; consumers deduplicate.
        """
        if generation < self._free_log_base:
            return None
        return self._free_log[generation - self._free_log_base:]

    # ------------------------------------------------------------------
    # Demand-ledger listeners (incremental contention bookkeeping)
    # ------------------------------------------------------------------
    def add_demand_listener(
        self, listener: Callable[["Cluster", Sequence[int]], None]
    ) -> None:
        """Register ``listener(cluster, lenders)`` for borrow-layout changes."""
        if listener not in self._demand_listeners:
            self._demand_listeners.append(listener)

    def remove_demand_listener(self, listener) -> None:
        try:
            self._demand_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_demand(self, lenders: Sequence[int]) -> None:
        if lenders:
            for listener in self._demand_listeners:
                listener(self, lenders)

    # ------------------------------------------------------------------
    # Incremental ledger maintenance (every mutation funnels through here)
    # ------------------------------------------------------------------
    def _log_free(self, node: int) -> None:
        """Record that ``node``'s free DRAM changed (index delta log)."""
        self.generation += 1
        log = self._free_log
        log.append(node)
        if len(log) > FREE_LOG_LIMIT:
            drop = len(log) // 2
            del log[:drop]
            self._free_log_base += drop

    def _touch_local(self, node: int, delta: int) -> None:
        self.local_used_mb[node] += delta
        self._free_local[node] -= delta
        self.local_used_total += delta
        self._log_free(node)

    def _touch_lent(self, node: int, delta: int) -> None:
        self.lent_mb[node] += delta
        self._free_local[node] -= delta
        self.lent_total += delta
        self._log_free(node)
        is_mem = self.lent_mb[node] * 2 > self.capacity_mb[node]
        if is_mem != self._memnode[node]:
            self._memnode[node] = is_mem
            self.memory_node_count += 1 if is_mem else -1
            if not self.busy[node]:
                self.startable_count += -1 if is_mem else 1

    def _set_busy(self, node: int, jid: int) -> None:
        self.busy[node] = True
        self.job_on_node[node] = jid
        self.busy_count += 1
        if self.is_large[node]:
            self.busy_large_count += 1
        if not self._memnode[node]:
            self.startable_count -= 1

    def _set_idle(self, node: int) -> None:
        self.busy[node] = False
        self.job_on_node[node] = -1
        self.busy_count -= 1
        if self.is_large[node]:
            self.busy_large_count -= 1
        if not self._memnode[node]:
            self.startable_count += 1

    # ------------------------------------------------------------------
    # Whole-allocation apply / release
    # ------------------------------------------------------------------
    def apply(self, jid: int, alloc: JobAllocation) -> None:
        """Commit ``alloc`` for job ``jid``, updating every ledger."""
        with perf_section("cluster.apply"):
            self._apply(jid, alloc)

    def _apply(self, jid: int, alloc: JobAllocation) -> None:
        if jid in self.allocations:
            raise AllocationError(f"job {jid} already has an allocation")
        # Validate before mutating anything.
        for node in alloc.nodes:
            if self.busy[node]:
                raise AllocationError(f"node {node} is busy (job {jid})")
        free = self.free_local()
        for node, mb in alloc.local_mb.items():
            if mb < 0 or node not in alloc.nodes:
                raise AllocationError(f"bad local allocation {mb}MB on node {node}")
            if mb > free[node]:
                raise AllocationError(
                    f"node {node} has {free[node]}MB free, need {mb}MB (job {jid})"
                )
        borrow_totals: Dict[int, int] = {}
        for node, lender_map in alloc.remote_mb.items():
            if node not in alloc.nodes:
                raise AllocationError(f"remote map for non-compute node {node}")
            for lender, mb in lender_map.items():
                if mb <= 0:
                    raise AllocationError(f"non-positive borrow {mb}MB from {lender}")
                if lender == node:
                    raise AllocationError(
                        f"node {node} cannot lend remote memory to itself"
                    )
                borrow_totals[lender] = borrow_totals.get(lender, 0) + mb
        for lender, mb in borrow_totals.items():
            # A lender that is also a compute node of this job must cover
            # both its planned local allocation and the lent memory.
            lendable = int(free[lender]) - alloc.local_mb.get(lender, 0)
            if mb > lendable:
                raise AllocationError(
                    f"lender {lender} has {lendable}MB lendable, need {mb}MB"
                )
        # Commit.
        for node in alloc.nodes:
            self._set_busy(node, jid)
        for node, mb in alloc.local_mb.items():
            self._touch_local(node, mb)
        for lender, mb in borrow_totals.items():
            self._touch_lent(lender, mb)
            self.lender_jobs[lender][jid] = (
                self.lender_jobs[lender].get(jid, 0) + mb
            )
        self.allocations[jid] = alloc
        alloc._seal()
        self._notify_demand(list(borrow_totals))

    def release(self, jid: int) -> JobAllocation:
        """Release all resources of job ``jid`` and return its allocation."""
        with perf_section("cluster.release"):
            return self._release(jid)

    def _release(self, jid: int) -> JobAllocation:
        alloc = self.allocations.pop(jid, None)
        if alloc is None:
            raise AllocationError(f"job {jid} has no allocation to release")
        for node in alloc.nodes:
            self._set_idle(node)
        for node, mb in alloc.local_mb.items():
            self._touch_local(node, -mb)
        released_lenders: List[int] = []
        for node, lender_map in alloc.remote_mb.items():
            for lender, mb in lender_map.items():
                self._touch_lent(lender, -mb)
                rec = self.lender_jobs[lender]
                rec[jid] -= mb
                if rec[jid] <= 0:
                    del rec[jid]
                released_lenders.append(lender)
        self._notify_demand(released_lenders)
        return alloc

    # ------------------------------------------------------------------
    # Incremental resizing (dynamic policy)
    # ------------------------------------------------------------------
    def grow_local(self, jid: int, node: int, mb: int) -> None:
        """Give job ``jid`` ``mb`` more local DRAM on ``node``."""
        alloc = self._alloc_of(jid, node)
        if mb <= 0:
            raise AllocationError(f"grow_local needs positive MB, got {mb}")
        free = int(self._free_local[node])
        if mb > free:
            raise AllocationError(f"node {node}: {free}MB free, need {mb}MB")
        self._touch_local(node, mb)
        alloc.local_mb[node] = alloc.local_mb.get(node, 0) + mb
        alloc._bump_local(mb)
        # The job's total allocation changed, so its remote fraction —
        # and with it the demand it places on every one of its lenders —
        # changed too.
        self._notify_demand([lender for lender, _ in alloc.lenders()])

    def shrink_local(self, jid: int, node: int, mb: int) -> None:
        """Take ``mb`` of local DRAM on ``node`` back from job ``jid``."""
        alloc = self._alloc_of(jid, node)
        have = alloc.local_mb.get(node, 0)
        if mb <= 0 or mb > have:
            raise AllocationError(
                f"shrink_local {mb}MB invalid; job {jid} holds {have}MB on {node}"
            )
        self._touch_local(node, -mb)
        alloc.local_mb[node] = have - mb
        alloc._bump_local(-mb)
        self._notify_demand([lender for lender, _ in alloc.lenders()])

    def add_remote(self, jid: int, node: int, lender: int, mb: int) -> None:
        """Borrow ``mb`` from ``lender`` on behalf of compute node ``node``."""
        alloc = self._alloc_of(jid, node)
        if mb <= 0:
            raise AllocationError(f"add_remote needs positive MB, got {mb}")
        if lender == node:
            raise AllocationError(f"node {node} cannot lend remote memory to itself")
        free = int(self._free_local[lender])
        if mb > free:
            raise AllocationError(f"lender {lender}: {free}MB free, need {mb}MB")
        self._touch_lent(lender, mb)
        self.lender_jobs[lender][jid] = self.lender_jobs[lender].get(jid, 0) + mb
        node_map = alloc.remote_mb.setdefault(node, {})
        node_map[lender] = node_map.get(lender, 0) + mb
        alloc._bump_remote(node, mb)
        self._notify_demand([ln for ln, _ in alloc.lenders()])

    def remove_remote(self, jid: int, node: int, lender: int, mb: int) -> None:
        """Return ``mb`` borrowed from ``lender`` for compute node ``node``."""
        alloc = self._alloc_of(jid, node)
        node_map = alloc.remote_mb.get(node, {})
        have = node_map.get(lender, 0)
        if mb <= 0 or mb > have:
            raise AllocationError(
                f"remove_remote {mb}MB invalid; borrowing {have}MB from {lender}"
            )
        self._touch_lent(lender, -mb)
        rec = self.lender_jobs[lender]
        rec[jid] -= mb
        if rec[jid] <= 0:
            del rec[jid]
        node_map[lender] = have - mb
        if node_map[lender] == 0:
            del node_map[lender]
        if not node_map and node in alloc.remote_mb:
            del alloc.remote_mb[node]
        alloc._bump_remote(node, -mb)
        # ``lender`` may no longer appear in the job's lender set; include
        # it explicitly so its demand entry is invalidated.
        dirty = [ln for ln, _ in alloc.lenders()]
        dirty.append(lender)
        self._notify_demand(dirty)

    def _alloc_of(self, jid: int, node: int) -> JobAllocation:
        alloc = self.allocations.get(jid)
        if alloc is None:
            raise AllocationError(f"job {jid} is not allocated")
        if node not in alloc.nodes:
            raise AllocationError(f"node {node} is not a compute node of job {jid}")
        return alloc

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def recompute_aggregates(self) -> Dict[str, int]:
        """Brute-force recomputation of every incremental aggregate.

        The returned values are what the running aggregates *should* be;
        :meth:`check_invariants` and the property tests compare them
        against the incrementally maintained attributes.
        """
        memnode = self.lent_mb * 2 > self.capacity_mb
        return {
            "busy_count": int(self.busy.sum()),
            "busy_large_count": int((self.busy & self.is_large).sum()),
            "local_used_total": int(self.local_used_mb.sum()),
            "lent_total": int(self.lent_mb.sum()),
            "memory_node_count": int(memnode.sum()),
            "startable_count": int(((~self.busy) & ~memnode).sum()),
        }

    def _check_aggregates(self) -> None:
        """Cross-check the incremental aggregates against brute force."""
        brute = self.recompute_aggregates()
        for name, want in brute.items():
            have = getattr(self, name)
            if have != want:
                raise AllocationError(
                    f"incremental aggregate {name}={have} != recomputed {want}"
                )
        fresh_free = self.capacity_mb - self.local_used_mb - self.lent_mb
        if not np.array_equal(self._free_local, fresh_free):
            raise AllocationError("maintained free_local vector out of sync")
        if not np.array_equal(self._memnode, self.lent_mb * 2 > self.capacity_mb):
            raise AllocationError("maintained memory-node mask out of sync")

    def check_invariants(self) -> None:
        """Raise :class:`AllocationError` if any ledger invariant is broken."""
        if (self.local_used_mb < 0).any() or (self.lent_mb < 0).any():
            raise AllocationError("negative ledger entry")
        if (self.local_used_mb + self.lent_mb > self.capacity_mb).any():
            raise AllocationError("node over-committed beyond capacity")
        # Cross-check allocations against ledgers.
        local = np.zeros(self.n_nodes, dtype=np.int64)
        lent = np.zeros(self.n_nodes, dtype=np.int64)
        busy_nodes: set[int] = set()
        # Per (lender, job) borrowed MB rebuilt from the allocation records,
        # compared exactly against ``lender_jobs`` below.
        expected_lender_jobs: Dict[int, Dict[int, int]] = {}
        for jid, alloc in self.allocations.items():
            try:
                alloc.check_conservation()
                alloc.check_seal()
            except ValueError as exc:
                raise AllocationError(f"job {jid}: {exc}") from exc
            for node in alloc.nodes:
                if node in busy_nodes:
                    raise AllocationError(f"node {node} allocated to two jobs")
                busy_nodes.add(node)
                if self.job_on_node[node] != jid:
                    raise AllocationError(f"job_on_node[{node}] != {jid}")
            for node, mb in alloc.local_mb.items():
                local[node] += mb
            for node, lender_map in alloc.remote_mb.items():
                for lender, mb in lender_map.items():
                    lent[lender] += mb
                    per_lender = expected_lender_jobs.setdefault(lender, {})
                    per_lender[jid] = per_lender.get(jid, 0) + mb
        if not np.array_equal(local, self.local_used_mb):
            raise AllocationError("local_used ledger out of sync with allocations")
        if not np.array_equal(lent, self.lent_mb):
            raise AllocationError("lent ledger out of sync with allocations")
        if busy_nodes != set(np.flatnonzero(self.busy)):
            raise AllocationError("busy mask out of sync with allocations")
        for lender, rec in enumerate(self.lender_jobs):
            expected = expected_lender_jobs.get(lender, {})
            if rec != expected:
                raise AllocationError(
                    f"lender_jobs[{lender}] {rec} != {expected} rebuilt from "
                    "the live allocations"
                )
        self._check_aggregates()
