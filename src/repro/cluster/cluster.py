"""Cluster state: columnar node ledgers with exact memory accounting.

All memory book-keeping is integer MB.  Per-node state lives in parallel
numpy arrays owned by a :class:`~repro.cluster.columns.NodeColumns`
struct-of-arrays store; :class:`~repro.cluster.node.Node` is a thin
index-backed view over it.  Three ledgers describe the memory state:

* ``local_used_mb`` — DRAM consumed by the job running *on* that node,
* ``lent_mb``       — DRAM lent to jobs running on *other* nodes,
* ``free local``    — ``capacity − local_used − lent`` (derived column).

Invariants (asserted by :meth:`Cluster.check_invariants` and
property-tested):

* every ledger entry is non-negative and ``local_used + lent ≤ capacity``;
* the sum of all lent memory equals the sum of all borrowed memory across
  the live :class:`~repro.cluster.allocation.JobAllocation` records;
* a node runs at most one job (nodes are CPU-exclusive, paper §2.1).

Incremental aggregates (this module's hot-path contract): every mutator
(:meth:`Cluster.apply` / :meth:`~Cluster.release` /
:meth:`~Cluster.grow_local` / :meth:`~Cluster.shrink_local` /
:meth:`~Cluster.add_remote` / :meth:`~Cluster.remove_remote`) updates
running scalar aggregates (``busy_count``, ``lent_total``,
``local_used_total``, ``memory_node_count``, ``startable_count``) and the
derived ``free_local`` / ``memnode`` columns in place, so per-event
accounting, scheduling pre-checks, backfill shadow estimation and
telemetry sampling are O(changed nodes) instead of O(n_nodes).
:meth:`~Cluster.recompute_aggregates` is the brute-force path that
:meth:`~Cluster.check_invariants` (and the property tests) cross-check
the incremental values against.

The generation-stamped free-DRAM delta log (:meth:`Cluster.free_changes_since`)
is the compatibility layer incremental consumers (the pool's sorted-free
indexes) sync against; when the bounded log overflows, consumers that fell
behind rebuild from the columns and the overflow is counted in
:attr:`Cluster.free_log_overflows` (surfaced as a ``repro.obs`` gauge).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import SystemConfig
from ..core.errors import AllocationError
from ..obs.profiling import perf_section
from .allocation import JobAllocation
from .columns import ColumnPageStore, NodeColumns
from .node import Node

#: Bound on the free-ledger delta log.  When it overflows, the oldest
#: entries are dropped and consumers that fell behind (see
#: :meth:`Cluster.free_changes_since`) rebuild their index from scratch.
FREE_LOG_LIMIT = 4096


class Cluster:
    """Mutable cluster state shared by scheduler and allocation policies."""

    def __init__(self, config: SystemConfig):
        self.config = config
        n = config.n_nodes
        n_large = config.n_large_nodes
        # Large nodes occupy the lowest indices (deterministic layout).
        is_large = np.zeros(n, dtype=bool)
        is_large[:n_large] = True
        capacity = np.where(
            is_large, config.large_mem_mb, config.normal_mem_mb
        ).astype(np.int64)
        #: the columnar node store (struct of arrays); the attributes
        #: below alias its columns, so either spelling reads the same
        #: memory.  All writes funnel through this class's mutators.
        self.columns = NodeColumns(capacity, is_large)
        self.is_large = self.columns.is_large
        self.capacity_mb = self.columns.capacity_mb
        self.local_used_mb = self.columns.local_used_mb
        self.lent_mb = self.columns.lent_mb
        #: per-node MB the job running on the node borrows from others
        #: (columnar mirror of its allocation's ``remote_on`` totals)
        self.remote_held_mb = self.columns.remote_held_mb
        self.busy = self.columns.busy
        self.job_on_node = self.columns.job_on_node
        #: live allocations by job id
        self.allocations: Dict[int, JobAllocation] = {}
        #: per lender node: job id -> MB currently borrowed from it
        self.lender_jobs: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._torus = None
        self._distance_rows: Dict[int, np.ndarray] = {}
        # ---- incremental aggregates --------------------------------------
        #: number of busy (job-running) nodes
        self.busy_count: int = 0
        #: number of busy *large* nodes (per-class idle counts for backfill)
        self.busy_large_count: int = 0
        #: total DRAM consumed by jobs on their own nodes (MB)
        self.local_used_total: int = 0
        #: total DRAM lent to remote borrowers (MB)
        self.lent_total: int = 0
        #: nodes that lent more than half their capacity
        self.memory_node_count: int = 0
        #: idle nodes that are not memory nodes (may start a job)
        self.startable_count: int = n
        self._total_capacity: int = int(self.capacity_mb.sum())
        self._n_large: int = int(n_large)
        # Derived columns; exposed through read-only views so consumers
        # cannot desync them (they copy before scratch mutations).
        self._free_local = self.columns.free_local
        self._free_view = self._free_local.view()
        self._free_view.flags.writeable = False
        self._memnode = self.columns.memnode
        self._memnode_view = self._memnode.view()
        self._memnode_view.flags.writeable = False
        #: bumped once per node whose free DRAM changed (index generation)
        self.generation: int = 0
        # Delta log: nodes touched at generations [_free_log_base, generation)
        self._free_log: List[int] = []
        self._free_log_base: int = 0
        #: times the bounded delta log overflowed (consumers that fell
        #: behind rebuild from the columns; surfaced via repro.obs)
        self.free_log_overflows: int = 0
        #: demand-ledger listeners, called as ``listener(cluster, lenders)``
        #: whenever the borrow layout or total allocation of a job changes
        #: (``lenders`` = the job's lender nodes whose demand may change)
        self._demand_listeners: List[Callable[["Cluster", Sequence[int]], None]] = []
        # Coalesced-notification state (see :meth:`defer_demand`):
        # explicit dirty lenders + dirty allocations expanded at flush.
        self._deferred_demand: Optional[
            Tuple[set, Dict[int, JobAllocation]]
        ] = None
        #: provenance tap, called as ``tap(kind, jid, alloc)`` after a
        #: whole-allocation mutation commits (None = disabled, free)
        self._prov_tap: Optional[Callable[[str, int, JobAllocation], None]] = None
        #: armed copy-on-write page store (None = disabled, one branch
        #: per mutator).  While armed, every columnar write preserves
        #: the pages it touches so a snapshot can roll them back in
        #: O(changed pages); see :mod:`repro.whatif`.
        self._cow: Optional[ColumnPageStore] = None

    # ------------------------------------------------------------------
    # Copy-on-write arming (the snapshot/fork primitive)
    # ------------------------------------------------------------------
    def arm_cow(self, page_nodes: Optional[int] = None) -> ColumnPageStore:
        """Arm (or return the armed) COW page store over the columns."""
        if self._cow is None:
            if page_nodes is None:
                self._cow = ColumnPageStore(self.columns)
            else:
                self._cow = ColumnPageStore(self.columns, page_nodes)
        return self._cow

    def disarm_cow(self) -> None:
        """Disarm COW tracking (pending dirty pages are forgotten)."""
        self._cow = None

    # ------------------------------------------------------------------
    # What-if snapshot support (see repro.whatif.snapshot)
    # ------------------------------------------------------------------
    #: python-side ledger scalars captured/restored positionally
    _SNAPSHOT_SCALARS = (
        "busy_count",
        "busy_large_count",
        "local_used_total",
        "lent_total",
        "memory_node_count",
        "startable_count",
        "_total_capacity",
        "generation",
        "_free_log_base",
        "free_log_overflows",
    )

    def snapshot_state(self) -> dict:
        """Capture the python-side ledger state (allocations, lender
        maps, aggregates, generation log).

        The columnar arrays are *not* captured here — the what-if
        snapshot preserves them page-by-page through the armed
        :class:`~repro.cluster.columns.ColumnPageStore`.
        """
        return {
            "allocations": {
                jid: alloc.snapshot_state()
                for jid, alloc in self.allocations.items()
            },
            "lender_jobs": [dict(d) for d in self.lender_jobs],
            "scalars": tuple(
                getattr(self, name) for name in self._SNAPSHOT_SCALARS
            ),
            "free_log": list(self._free_log),
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`snapshot_state` in place (reusable snapshot).

        Only valid together with a columnar rollback to the same
        instant (:meth:`ColumnPageStore.rollback`) — the python ledgers
        restored here and the numpy ledgers must describe the same
        state, which ``check_invariants`` cross-checks.
        """
        # Lenders of the outgoing (fork-dirtied) *and* incoming states
        # may change demand; everything else is untouched either way.
        dirty = set()
        for alloc in self.allocations.values():
            dirty.update(alloc.lender_ids())
        self.allocations = {
            jid: JobAllocation.from_snapshot(s)
            for jid, s in state["allocations"].items()
        }
        for alloc in self.allocations.values():
            dirty.update(alloc.lender_ids())
        for node, borrowed in enumerate(state["lender_jobs"]):
            self.lender_jobs[node] = dict(borrowed)
        for name, value in zip(self._SNAPSHOT_SCALARS, state["scalars"]):
            setattr(self, name, value)
        self._free_log = list(state["free_log"])
        # Invalidate listener-maintained demand ledgers (the contention
        # model's cache) for the affected lenders.  A provenance-tapped
        # restore emits a demand_dirty row here; the what-if snapshot
        # restores the provenance log afterwards, so forks stay clean.
        self._notify_demand(sorted(dirty))

    # ------------------------------------------------------------------
    # Interconnect (lazy; used by topology-aware lending and the optional
    # distance term of the slowdown model)
    # ------------------------------------------------------------------
    @property
    def torus(self):
        if self._torus is None:
            from .interconnect import Torus

            self._torus = Torus.for_nodes(self.config.n_nodes)
        return self._torus

    def distance_row(self, node: int) -> np.ndarray:
        """Hop distances from ``node`` to every node (cached per node)."""
        row = self._distance_rows.get(node)
        if row is None:
            row = self.torus.distance_row(node, self.n_nodes)
            self._distance_rows[node] = row
        return row

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    def node(self, index: int) -> Node:
        return Node(self, index)

    # ------------------------------------------------------------------
    # Node-view write funnels (scenario setup / what-if scaffolding).
    # These keep the columns, aggregates, generation log and demand
    # listeners coherent, but bypass the per-job allocation records, so
    # they are for standalone column state only: `check_invariants`
    # cross-checks ledgers against live allocations and will reject
    # funnel-written state that no allocation backs.
    # ------------------------------------------------------------------
    def set_local_used(self, node: int, mb: int) -> None:
        """Set ``local_used_mb[node]`` absolutely, keeping columns coherent."""
        mb = int(mb)
        if mb < 0:
            raise AllocationError(f"negative local_used {mb}MB on node {node}")
        if mb + int(self.lent_mb[node]) > int(self.capacity_mb[node]):
            raise AllocationError(
                f"node {node}: local_used {mb}MB + lent "
                f"{int(self.lent_mb[node])}MB exceeds capacity"
            )
        delta = mb - int(self.local_used_mb[node])
        if delta:
            self._touch_local(node, delta)

    def set_lent(self, node: int, mb: int) -> None:
        """Set ``lent_mb[node]`` absolutely, keeping columns coherent."""
        mb = int(mb)
        if mb < 0:
            raise AllocationError(f"negative lent {mb}MB on node {node}")
        if mb + int(self.local_used_mb[node]) > int(self.capacity_mb[node]):
            raise AllocationError(
                f"node {node}: lent {mb}MB + local_used "
                f"{int(self.local_used_mb[node])}MB exceeds capacity"
            )
        delta = mb - int(self.lent_mb[node])
        if delta:
            self._touch_lent(node, delta)
            self._notify_demand([node])

    def free_local(self) -> np.ndarray:
        """Physically free DRAM per node (maintained read-only vector)."""
        return self._free_view

    def is_memory_node(self) -> np.ndarray:
        """Mask of nodes that lent more than half their capacity."""
        return self._memnode_view

    def startable(self) -> np.ndarray:
        """Mask of nodes on which a new job may start (idle, not a memory node)."""
        return (~self.busy) & ~self._memnode

    @property
    def free_local_total(self) -> int:
        """Total physically free DRAM across all nodes (MB, O(1))."""
        return self._total_capacity - self.local_used_total - self.lent_total

    @property
    def allocated_total(self) -> int:
        """Total allocated DRAM, local plus lent (MB, O(1))."""
        return self.local_used_total + self.lent_total

    def n_idle(self) -> int:
        return self.n_nodes - self.busy_count

    def total_capacity_mb(self) -> int:
        return self._total_capacity

    def total_allocated_mb(self) -> int:
        return self.local_used_total + self.lent_total

    def fitting_idle_count(self, request_mb: int) -> int:
        """Idle nodes whose *capacity* covers ``request_mb`` (O(1)).

        Capacity takes exactly two values (normal/large node classes), so
        the count follows from the per-class idle tallies.
        """
        idle_large = self._n_large - self.busy_large_count
        idle_normal = (self.n_nodes - self._n_large) - (
            self.busy_count - self.busy_large_count
        )
        count = 0
        if self.config.large_mem_mb >= request_mb:
            count += idle_large
        if self.config.normal_mem_mb >= request_mb:
            count += idle_normal
        return count

    def memory_utilization(self) -> float:
        cap = self.total_capacity_mb()
        return self.total_allocated_mb() / cap if cap else 0.0

    def cpu_utilization(self) -> float:
        return float(self.busy_count) / self.n_nodes if self.n_nodes else 0.0

    def borrowers_of(self, lender: int) -> Dict[int, int]:
        """Jobs currently borrowing from ``lender`` (job id -> MB)."""
        return self.lender_jobs[lender]

    def free_changes_since(self, generation: int) -> Optional[List[int]]:
        """Nodes whose free DRAM changed since ``generation``.

        Returns ``None`` when the delta log no longer reaches back that
        far (the consumer must rebuild its index from scratch).  Entries
        may repeat; consumers deduplicate.
        """
        if generation < self._free_log_base:
            return None
        return self._free_log[generation - self._free_log_base:]

    # ------------------------------------------------------------------
    # Demand-ledger listeners (incremental contention bookkeeping)
    # ------------------------------------------------------------------
    def add_demand_listener(
        self, listener: Callable[["Cluster", Sequence[int]], None]
    ) -> None:
        """Register ``listener(cluster, lenders)`` for borrow-layout changes."""
        if listener not in self._demand_listeners:
            self._demand_listeners.append(listener)

    def set_provenance_tap(
        self, tap: Optional[Callable[[str, int, JobAllocation], None]]
    ) -> None:
        """Install ``tap(kind, jid, alloc)`` on apply/release commits.

        The incremental mutators (grow/shrink/add/remove) already reach
        observers through the demand listener pub/sub; the tap covers the
        whole-allocation seams those notifications cannot attribute to a
        single job.  ``None`` (the default) keeps the mutators tap-free.
        """
        self._prov_tap = tap

    def remove_demand_listener(self, listener) -> None:
        try:
            self._demand_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_demand(self, lenders: Sequence[int]) -> None:
        if not lenders or not self._demand_listeners:
            return
        if self._deferred_demand is not None:
            self._deferred_demand[0].update(lenders)
            return
        for listener in self._demand_listeners:
            listener(self, lenders)

    def _notify_job_demand(
        self, jid: int, alloc: JobAllocation, extra: Sequence[int] = ()
    ) -> None:
        """All of ``alloc``'s lenders (plus ``extra``) may change demand.

        A job's ``remote_fraction`` depends on its *total* allocation, so
        any resize dirties every one of its lenders.  Inside a
        :meth:`defer_demand` window the allocation itself is recorded and
        expanded once at flush — turning the per-node O(lenders)
        notifications of a multi-node resize into a single O(lenders)
        pass per job.
        """
        if not self._demand_listeners:
            return
        deferred = self._deferred_demand
        if deferred is not None:
            deferred[0].update(extra)
            deferred[1][jid] = alloc
            return
        dirty = list(alloc.lender_ids())
        dirty.extend(extra)
        self._notify_demand(dirty)

    @contextmanager
    def defer_demand(self):
        """Coalesce demand notifications until the ``with`` block exits.

        Within the window, dirtied lenders and resized allocations are
        collected instead of notifying listeners per mutation; one
        deduplicated, sorted notification fires at exit.  Reentrant: an
        inner window defers to the outermost flush.  Callers must not
        read listener-maintained state (e.g. the contention model's
        ``lender_demand``) inside the window — it may be stale until the
        flush.
        """
        if self._deferred_demand is not None or not self._demand_listeners:
            yield
            return
        self._deferred_demand = (set(), {})
        try:
            yield
        finally:
            lenders, allocs = self._deferred_demand
            self._deferred_demand = None
            for alloc in allocs.values():
                lenders.update(alloc.lender_ids())
            self._notify_demand(sorted(lenders))

    # ------------------------------------------------------------------
    # Incremental ledger maintenance (every mutation funnels through here)
    # ------------------------------------------------------------------
    def _log_free(self, node: int) -> None:
        """Record that ``node``'s free DRAM changed (index delta log)."""
        self.generation += 1
        log = self._free_log
        log.append(node)
        if len(log) > FREE_LOG_LIMIT:
            drop = len(log) // 2
            del log[:drop]
            self._free_log_base += drop
            # Counted, not silent: consumers that fell behind the dropped
            # prefix must full-rebuild; repro.obs samples this counter.
            self.free_log_overflows += 1

    def _log_free_many(self, nodes: Sequence[int]) -> None:
        """Bulk :meth:`_log_free`: one generation bump per changed node.

        Keeps the ``generation == _free_log_base + len(_free_log)``
        arithmetic of the single-node path so index consumers can slice
        the log by generation regardless of which path appended.
        """
        count = len(nodes)
        self.generation += count
        log = self._free_log
        log.extend(nodes)
        while len(log) > FREE_LOG_LIMIT:
            drop = len(log) // 2
            del log[:drop]
            self._free_log_base += drop
            self.free_log_overflows += 1

    def _touch_local(self, node: int, delta: int) -> None:
        if self._cow is not None:
            self._cow.touch(node)
        self.local_used_mb[node] += delta
        self._free_local[node] -= delta
        self.local_used_total += delta
        self._log_free(node)

    def _touch_local_many(self, nodes: np.ndarray, deltas: np.ndarray) -> None:
        """Columnar bulk :meth:`_touch_local` (``nodes`` must be unique)."""
        if self._cow is not None:
            self._cow.touch_many(nodes)
        self.local_used_mb[nodes] += deltas
        self._free_local[nodes] -= deltas
        self.local_used_total += int(deltas.sum())
        self._log_free_many(nodes.tolist())

    def _touch_lent_many(self, nodes: np.ndarray, deltas: np.ndarray) -> None:
        """Columnar bulk :meth:`_touch_lent` (``nodes`` must be unique).

        Net-equivalent to per-node touches: lending moves monotonically
        within one bulk call, so each node flips memory-node status at
        most once either way.
        """
        if self._cow is not None:
            self._cow.touch_many(nodes)
        self.lent_mb[nodes] += deltas
        self._free_local[nodes] -= deltas
        self.lent_total += int(deltas.sum())
        self._log_free_many(nodes.tolist())
        new_mem = self.lent_mb[nodes] * 2 > self.capacity_mb[nodes]
        flipped = new_mem != self._memnode[nodes]
        if flipped.any():
            flip_nodes = nodes[flipped]
            now_mem = new_mem[flipped]
            self._memnode[flip_nodes] = now_mem
            self.memory_node_count += int(now_mem.sum()) - int((~now_mem).sum())
            idle = ~self.busy[flip_nodes]
            self.startable_count += int((idle & ~now_mem).sum())
            self.startable_count -= int((idle & now_mem).sum())

    def _touch_lent(self, node: int, delta: int) -> None:
        if self._cow is not None:
            self._cow.touch(node)
        self.lent_mb[node] += delta
        self._free_local[node] -= delta
        self.lent_total += delta
        self._log_free(node)
        is_mem = self.lent_mb[node] * 2 > self.capacity_mb[node]
        if is_mem != self._memnode[node]:
            self._memnode[node] = is_mem
            self.memory_node_count += 1 if is_mem else -1
            if not self.busy[node]:
                self.startable_count += -1 if is_mem else 1

    def _set_busy(self, node: int, jid: int) -> None:
        if self._cow is not None:
            self._cow.touch(node)
        self.busy[node] = True
        self.job_on_node[node] = jid
        self.busy_count += 1
        if self.is_large[node]:
            self.busy_large_count += 1
        if not self._memnode[node]:
            self.startable_count -= 1

    def _set_idle(self, node: int) -> None:
        if self._cow is not None:
            self._cow.touch(node)
        self.busy[node] = False
        self.job_on_node[node] = -1
        self.busy_count -= 1
        if self.is_large[node]:
            self.busy_large_count -= 1
        if not self._memnode[node]:
            self.startable_count += 1

    # ------------------------------------------------------------------
    # Whole-allocation apply / release
    # ------------------------------------------------------------------
    def apply(self, jid: int, alloc: JobAllocation) -> None:
        """Commit ``alloc`` for job ``jid``, updating every ledger."""
        with perf_section("cluster.apply"):
            self._apply(jid, alloc)
        if self._prov_tap is not None:
            self._prov_tap("apply", jid, alloc)

    def _apply(self, jid: int, alloc: JobAllocation) -> None:
        if jid in self.allocations:
            raise AllocationError(f"job {jid} already has an allocation")
        nodes_arr = np.asarray(alloc.nodes, dtype=np.int64)
        node_set = set(alloc.nodes)
        # Validate before mutating anything (vectorised happy path; the
        # scalar loops only re-run to name the offending node).
        if self.busy[nodes_arr].any():
            for node in alloc.nodes:
                if self.busy[node]:
                    raise AllocationError(f"node {node} is busy (job {jid})")
        free = self.free_local()
        local_nodes = local_mbs = None
        if alloc.local_mb:
            k = len(alloc.local_mb)
            local_nodes = np.fromiter(alloc.local_mb.keys(), np.int64, k)
            local_mbs = np.fromiter(alloc.local_mb.values(), np.int64, k)
            if (
                (local_mbs < 0).any()
                or not node_set.issuperset(alloc.local_mb)
                or (local_mbs > free[local_nodes]).any()
            ):
                for node, mb in alloc.local_mb.items():
                    if mb < 0 or node not in node_set:
                        raise AllocationError(
                            f"bad local allocation {mb}MB on node {node}"
                        )
                    if mb > free[node]:
                        raise AllocationError(
                            f"node {node} has {free[node]}MB free, "
                            f"need {mb}MB (job {jid})"
                        )
        borrow_totals: Dict[int, int] = {}
        for node, lender_map in alloc.remote_mb.items():
            if node not in node_set:
                raise AllocationError(f"remote map for non-compute node {node}")
            for lender, mb in lender_map.items():
                if mb <= 0:
                    raise AllocationError(f"non-positive borrow {mb}MB from {lender}")
                if lender == node:
                    raise AllocationError(
                        f"node {node} cannot lend remote memory to itself"
                    )
                borrow_totals[lender] = borrow_totals.get(lender, 0) + mb
        for lender, mb in borrow_totals.items():
            # A lender that is also a compute node of this job must cover
            # both its planned local allocation and the lent memory.
            lendable = int(free[lender]) - alloc.local_mb.get(lender, 0)
            if mb > lendable:
                raise AllocationError(
                    f"lender {lender} has {lendable}MB lendable, need {mb}MB"
                )
        # Commit (columnar bulk writes; node lists are unique by
        # construction so fancy-indexed updates are exact).
        if self._cow is not None:
            self._cow.touch_many(nodes_arr)
        self.busy[nodes_arr] = True
        self.job_on_node[nodes_arr] = jid
        self.busy_count += len(nodes_arr)
        self.busy_large_count += int(self.is_large[nodes_arr].sum())
        self.startable_count -= int((~self._memnode[nodes_arr]).sum())
        if local_nodes is not None:
            self._touch_local_many(local_nodes, local_mbs)
        if borrow_totals:
            k = len(borrow_totals)
            self._touch_lent_many(
                np.fromiter(borrow_totals.keys(), np.int64, k),
                np.fromiter(borrow_totals.values(), np.int64, k),
            )
            for lender, mb in borrow_totals.items():
                self.lender_jobs[lender][jid] = (
                    self.lender_jobs[lender].get(jid, 0) + mb
                )
        for node, lender_map in alloc.remote_mb.items():
            self.remote_held_mb[node] += sum(lender_map.values())
        self.allocations[jid] = alloc
        alloc._seal()
        self._notify_demand(list(borrow_totals))

    def release(self, jid: int) -> JobAllocation:
        """Release all resources of job ``jid`` and return its allocation."""
        with perf_section("cluster.release"):
            alloc = self._release(jid)
        if self._prov_tap is not None:
            self._prov_tap("release", jid, alloc)
        return alloc

    def _release(self, jid: int) -> JobAllocation:
        alloc = self.allocations.pop(jid, None)
        if alloc is None:
            raise AllocationError(f"job {jid} has no allocation to release")
        nodes_arr = alloc.nodes_array()
        if self._cow is not None:
            self._cow.touch_many(nodes_arr)
        self.busy[nodes_arr] = False
        self.job_on_node[nodes_arr] = -1
        self.busy_count -= len(nodes_arr)
        self.busy_large_count -= int(self.is_large[nodes_arr].sum())
        self.startable_count += int((~self._memnode[nodes_arr]).sum())
        if alloc.local_mb:
            k = len(alloc.local_mb)
            self._touch_local_many(
                np.fromiter(alloc.local_mb.keys(), np.int64, k),
                -np.fromiter(alloc.local_mb.values(), np.int64, k),
            )
        released_lenders: List[int] = []
        if alloc.remote_mb:
            lender_totals = alloc._lender_mb
            if lender_totals is None:  # unsealed: aggregate brute-force
                lender_totals = dict(alloc.lenders())
            k = len(lender_totals)
            self._touch_lent_many(
                np.fromiter(lender_totals.keys(), np.int64, k),
                -np.fromiter(lender_totals.values(), np.int64, k),
            )
            for lender, mb in lender_totals.items():
                rec = self.lender_jobs[lender]
                rec[jid] -= mb
                if rec[jid] <= 0:
                    del rec[jid]
            released_lenders = list(lender_totals)
            for node, lender_map in alloc.remote_mb.items():
                self.remote_held_mb[node] -= sum(lender_map.values())
        self._notify_demand(released_lenders)
        return alloc

    # ------------------------------------------------------------------
    # Incremental resizing (dynamic policy)
    # ------------------------------------------------------------------
    def grow_local(self, jid: int, node: int, mb: int,
        alloc: Optional[JobAllocation] = None) -> None:
        """Give job ``jid`` ``mb`` more local DRAM on ``node``."""
        if alloc is None:
            alloc = self._alloc_of(jid, node)
        if mb <= 0:
            raise AllocationError(f"grow_local needs positive MB, got {mb}")
        free = int(self._free_local[node])
        if mb > free:
            raise AllocationError(f"node {node}: {free}MB free, need {mb}MB")
        self._touch_local(node, mb)
        alloc.local_mb[node] = alloc.local_mb.get(node, 0) + mb
        alloc._bump_local(mb)
        # The job's total allocation changed, so its remote fraction —
        # and with it the demand it places on every one of its lenders —
        # changed too.
        self._notify_job_demand(jid, alloc)

    def shrink_local(self, jid: int, node: int, mb: int,
        alloc: Optional[JobAllocation] = None) -> None:
        """Take ``mb`` of local DRAM on ``node`` back from job ``jid``."""
        if alloc is None:
            alloc = self._alloc_of(jid, node)
        have = alloc.local_mb.get(node, 0)
        if mb <= 0 or mb > have:
            raise AllocationError(
                f"shrink_local {mb}MB invalid; job {jid} holds {have}MB on {node}"
            )
        self._touch_local(node, -mb)
        alloc.local_mb[node] = have - mb
        alloc._bump_local(-mb)
        self._notify_job_demand(jid, alloc)

    def add_remote(self, jid: int, node: int, lender: int, mb: int,
        alloc: Optional[JobAllocation] = None) -> None:
        """Borrow ``mb`` from ``lender`` on behalf of compute node ``node``."""
        if alloc is None:
            alloc = self._alloc_of(jid, node)
        if mb <= 0:
            raise AllocationError(f"add_remote needs positive MB, got {mb}")
        if lender == node:
            raise AllocationError(f"node {node} cannot lend remote memory to itself")
        free = int(self._free_local[lender])
        if mb > free:
            raise AllocationError(f"lender {lender}: {free}MB free, need {mb}MB")
        self._touch_lent(lender, mb)
        self.lender_jobs[lender][jid] = self.lender_jobs[lender].get(jid, 0) + mb
        if self._cow is not None:
            self._cow.touch(node)
        self.remote_held_mb[node] += mb
        node_map = alloc.remote_mb.setdefault(node, {})
        node_map[lender] = node_map.get(lender, 0) + mb
        alloc._bump_remote(node, lender, mb)
        self._notify_job_demand(jid, alloc)

    def remove_remote(self, jid: int, node: int, lender: int, mb: int,
        alloc: Optional[JobAllocation] = None) -> None:
        """Return ``mb`` borrowed from ``lender`` for compute node ``node``."""
        if alloc is None:
            alloc = self._alloc_of(jid, node)
        node_map = alloc.remote_mb.get(node, {})
        have = node_map.get(lender, 0)
        if mb <= 0 or mb > have:
            raise AllocationError(
                f"remove_remote {mb}MB invalid; borrowing {have}MB from {lender}"
            )
        self._touch_lent(lender, -mb)
        rec = self.lender_jobs[lender]
        rec[jid] -= mb
        if rec[jid] <= 0:
            del rec[jid]
        if self._cow is not None:
            self._cow.touch(node)
        self.remote_held_mb[node] -= mb
        node_map[lender] = have - mb
        if node_map[lender] == 0:
            del node_map[lender]
        if not node_map and node in alloc.remote_mb:
            del alloc.remote_mb[node]
        alloc._bump_remote(node, lender, -mb)
        # ``lender`` may no longer appear in the job's lender set; include
        # it explicitly so its demand entry is invalidated.
        self._notify_job_demand(jid, alloc, extra=(lender,))

    def _alloc_of(self, jid: int, node: int) -> JobAllocation:
        alloc = self.allocations.get(jid)
        if alloc is None:
            raise AllocationError(f"job {jid} is not allocated")
        if not alloc.has_node(node):
            raise AllocationError(f"node {node} is not a compute node of job {jid}")
        return alloc

    # ------------------------------------------------------------------
    # Capacity expansion (what-if: attach disaggregated memory modules)
    # ------------------------------------------------------------------
    def expand_capacity(self, nodes: Sequence[int], extra_mb: int) -> None:
        """Attach ``extra_mb`` of memory to each node in ``nodes``.

        Models plugging additional disaggregated memory into the fabric
        behind those nodes (the ``add-memnodes`` what-if perturbation).
        Free DRAM, the generation log and the memory-node flags stay
        coherent; a node that had lent more than half its *old* capacity
        may stop being a memory node.
        """
        if extra_mb <= 0:
            raise AllocationError(
                f"expand_capacity needs positive MB, got {extra_mb}"
            )
        nodes_arr = np.unique(np.asarray(list(nodes), dtype=np.int64))
        if len(nodes_arr) == 0:
            return
        if (nodes_arr < 0).any() or (nodes_arr >= self.n_nodes).any():
            raise AllocationError(f"expand_capacity: node out of range: {nodes}")
        if self._cow is not None:
            self._cow.touch_many(nodes_arr)
        self.capacity_mb[nodes_arr] += extra_mb
        self._free_local[nodes_arr] += extra_mb
        self._total_capacity += int(extra_mb) * len(nodes_arr)
        self._log_free_many(nodes_arr.tolist())
        new_mem = self.lent_mb[nodes_arr] * 2 > self.capacity_mb[nodes_arr]
        flipped = new_mem != self._memnode[nodes_arr]
        if flipped.any():
            flip_nodes = nodes_arr[flipped]
            now_mem = new_mem[flipped]
            self._memnode[flip_nodes] = now_mem
            self.memory_node_count += int(now_mem.sum()) - int((~now_mem).sum())
            idle = ~self.busy[flip_nodes]
            self.startable_count += int((idle & ~now_mem).sum())
            self.startable_count -= int((idle & now_mem).sum())

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def recompute_aggregates(self) -> Dict[str, int]:
        """Brute-force recomputation of every incremental aggregate.

        The returned values are what the running aggregates *should* be;
        :meth:`check_invariants` and the property tests compare them
        against the incrementally maintained attributes.
        """
        memnode = self.lent_mb * 2 > self.capacity_mb
        return {
            "busy_count": int(self.busy.sum()),
            "busy_large_count": int((self.busy & self.is_large).sum()),
            "local_used_total": int(self.local_used_mb.sum()),
            "lent_total": int(self.lent_mb.sum()),
            "memory_node_count": int(memnode.sum()),
            "startable_count": int(((~self.busy) & ~memnode).sum()),
        }

    def _check_aggregates(self) -> None:
        """Cross-check the incremental aggregates against brute force."""
        brute = self.recompute_aggregates()
        for name, want in brute.items():
            have = getattr(self, name)
            if have != want:
                raise AllocationError(
                    f"incremental aggregate {name}={have} != recomputed {want}"
                )
        try:
            self.columns.validate()
        except ValueError as exc:
            raise AllocationError(str(exc)) from exc

    def check_invariants(self) -> None:
        """Raise :class:`AllocationError` if any ledger invariant is broken."""
        if (self.local_used_mb < 0).any() or (self.lent_mb < 0).any():
            raise AllocationError("negative ledger entry")
        if (self.local_used_mb + self.lent_mb > self.capacity_mb).any():
            raise AllocationError("node over-committed beyond capacity")
        # Cross-check allocations against ledgers.
        local = np.zeros(self.n_nodes, dtype=np.int64)
        lent = np.zeros(self.n_nodes, dtype=np.int64)
        held = np.zeros(self.n_nodes, dtype=np.int64)
        busy_nodes: set[int] = set()
        # Per (lender, job) borrowed MB rebuilt from the allocation records,
        # compared exactly against ``lender_jobs`` below.
        expected_lender_jobs: Dict[int, Dict[int, int]] = {}
        for jid, alloc in self.allocations.items():
            try:
                alloc.check_conservation()
                alloc.check_seal()
            except ValueError as exc:
                raise AllocationError(f"job {jid}: {exc}") from exc
            for node in alloc.nodes:
                if node in busy_nodes:
                    raise AllocationError(f"node {node} allocated to two jobs")
                busy_nodes.add(node)
                if self.job_on_node[node] != jid:
                    raise AllocationError(f"job_on_node[{node}] != {jid}")
            for node, mb in alloc.local_mb.items():
                local[node] += mb
            for node, lender_map in alloc.remote_mb.items():
                for lender, mb in lender_map.items():
                    lent[lender] += mb
                    held[node] += mb
                    per_lender = expected_lender_jobs.setdefault(lender, {})
                    per_lender[jid] = per_lender.get(jid, 0) + mb
        if not np.array_equal(local, self.local_used_mb):
            raise AllocationError("local_used ledger out of sync with allocations")
        if not np.array_equal(lent, self.lent_mb):
            raise AllocationError("lent ledger out of sync with allocations")
        if not np.array_equal(held, self.remote_held_mb):
            raise AllocationError(
                "remote_held column out of sync with allocations"
            )
        if busy_nodes != set(np.flatnonzero(self.busy)):
            raise AllocationError("busy mask out of sync with allocations")
        for lender, rec in enumerate(self.lender_jobs):
            expected = expected_lender_jobs.get(lender, {})
            if rec != expected:
                raise AllocationError(
                    f"lender_jobs[{lender}] {rec} != {expected} rebuilt from "
                    "the live allocations"
                )
        self._check_aggregates()
