"""Cluster state: columnar node ledgers with exact memory accounting.

All memory book-keeping is integer MB.  Three per-node ledgers describe the
state:

* ``local_used_mb`` — DRAM consumed by the job running *on* that node,
* ``lent_mb``       — DRAM lent to jobs running on *other* nodes,
* ``free local``    — ``capacity − local_used − lent`` (derived).

Invariants (asserted by :meth:`Cluster.check_invariants` and
property-tested):

* every ledger entry is non-negative and ``local_used + lent ≤ capacity``;
* the sum of all lent memory equals the sum of all borrowed memory across
  the live :class:`~repro.cluster.allocation.JobAllocation` records;
* a node runs at most one job (nodes are CPU-exclusive, paper §2.1).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.config import SystemConfig
from ..core.errors import AllocationError
from ..obs.profiling import perf_section
from .allocation import JobAllocation
from .node import Node


class Cluster:
    """Mutable cluster state shared by scheduler and allocation policies."""

    def __init__(self, config: SystemConfig):
        self.config = config
        n = config.n_nodes
        n_large = config.n_large_nodes
        # Large nodes occupy the lowest indices (deterministic layout).
        self.is_large = np.zeros(n, dtype=bool)
        self.is_large[:n_large] = True
        self.capacity_mb = np.where(
            self.is_large, config.large_mem_mb, config.normal_mem_mb
        ).astype(np.int64)
        self.local_used_mb = np.zeros(n, dtype=np.int64)
        self.lent_mb = np.zeros(n, dtype=np.int64)
        self.busy = np.zeros(n, dtype=bool)
        self.job_on_node = np.full(n, -1, dtype=np.int64)
        #: live allocations by job id
        self.allocations: Dict[int, JobAllocation] = {}
        #: per lender node: job id -> MB currently borrowed from it
        self.lender_jobs: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._torus = None
        self._distance_rows: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Interconnect (lazy; used by topology-aware lending and the optional
    # distance term of the slowdown model)
    # ------------------------------------------------------------------
    @property
    def torus(self):
        if self._torus is None:
            from .interconnect import Torus

            self._torus = Torus.for_nodes(self.config.n_nodes)
        return self._torus

    def distance_row(self, node: int) -> np.ndarray:
        """Hop distances from ``node`` to every node (cached per node)."""
        row = self._distance_rows.get(node)
        if row is None:
            row = self.torus.distance_row(node, self.n_nodes)
            self._distance_rows[node] = row
        return row

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    def node(self, index: int) -> Node:
        return Node(self, index)

    def free_local(self) -> np.ndarray:
        """Physically free DRAM per node (vector)."""
        return self.capacity_mb - self.local_used_mb - self.lent_mb

    def is_memory_node(self) -> np.ndarray:
        """Mask of nodes that lent more than half their capacity."""
        return self.lent_mb * 2 > self.capacity_mb

    def startable(self) -> np.ndarray:
        """Mask of nodes on which a new job may start (idle, not a memory node)."""
        return (~self.busy) & ~self.is_memory_node()

    def n_idle(self) -> int:
        return int((~self.busy).sum())

    def total_capacity_mb(self) -> int:
        return int(self.capacity_mb.sum())

    def total_allocated_mb(self) -> int:
        return int(self.local_used_mb.sum() + self.lent_mb.sum())

    def memory_utilization(self) -> float:
        cap = self.total_capacity_mb()
        return self.total_allocated_mb() / cap if cap else 0.0

    def cpu_utilization(self) -> float:
        return float(self.busy.sum()) / self.n_nodes if self.n_nodes else 0.0

    def borrowers_of(self, lender: int) -> Dict[int, int]:
        """Jobs currently borrowing from ``lender`` (job id -> MB)."""
        return self.lender_jobs[lender]

    # ------------------------------------------------------------------
    # Whole-allocation apply / release
    # ------------------------------------------------------------------
    def apply(self, jid: int, alloc: JobAllocation) -> None:
        """Commit ``alloc`` for job ``jid``, updating every ledger."""
        with perf_section("cluster.apply"):
            self._apply(jid, alloc)

    def _apply(self, jid: int, alloc: JobAllocation) -> None:
        if jid in self.allocations:
            raise AllocationError(f"job {jid} already has an allocation")
        # Validate before mutating anything.
        for node in alloc.nodes:
            if self.busy[node]:
                raise AllocationError(f"node {node} is busy (job {jid})")
        free = self.free_local()
        for node, mb in alloc.local_mb.items():
            if mb < 0 or node not in alloc.nodes:
                raise AllocationError(f"bad local allocation {mb}MB on node {node}")
            if mb > free[node]:
                raise AllocationError(
                    f"node {node} has {free[node]}MB free, need {mb}MB (job {jid})"
                )
        borrow_totals: Dict[int, int] = {}
        for node, lender_map in alloc.remote_mb.items():
            if node not in alloc.nodes:
                raise AllocationError(f"remote map for non-compute node {node}")
            for lender, mb in lender_map.items():
                if mb <= 0:
                    raise AllocationError(f"non-positive borrow {mb}MB from {lender}")
                if lender == node:
                    raise AllocationError(
                        f"node {node} cannot lend remote memory to itself"
                    )
                borrow_totals[lender] = borrow_totals.get(lender, 0) + mb
        for lender, mb in borrow_totals.items():
            # A lender that is also a compute node of this job must cover
            # both its planned local allocation and the lent memory.
            lendable = int(free[lender]) - alloc.local_mb.get(lender, 0)
            if mb > lendable:
                raise AllocationError(
                    f"lender {lender} has {lendable}MB lendable, need {mb}MB"
                )
        # Commit.
        for node in alloc.nodes:
            self.busy[node] = True
            self.job_on_node[node] = jid
        for node, mb in alloc.local_mb.items():
            self.local_used_mb[node] += mb
        for lender, mb in borrow_totals.items():
            self.lent_mb[lender] += mb
            self.lender_jobs[lender][jid] = (
                self.lender_jobs[lender].get(jid, 0) + mb
            )
        self.allocations[jid] = alloc

    def release(self, jid: int) -> JobAllocation:
        """Release all resources of job ``jid`` and return its allocation."""
        with perf_section("cluster.release"):
            return self._release(jid)

    def _release(self, jid: int) -> JobAllocation:
        alloc = self.allocations.pop(jid, None)
        if alloc is None:
            raise AllocationError(f"job {jid} has no allocation to release")
        for node in alloc.nodes:
            self.busy[node] = False
            self.job_on_node[node] = -1
        for node, mb in alloc.local_mb.items():
            self.local_used_mb[node] -= mb
        for node, lender_map in alloc.remote_mb.items():
            for lender, mb in lender_map.items():
                self.lent_mb[lender] -= mb
                rec = self.lender_jobs[lender]
                rec[jid] -= mb
                if rec[jid] <= 0:
                    del rec[jid]
        return alloc

    # ------------------------------------------------------------------
    # Incremental resizing (dynamic policy)
    # ------------------------------------------------------------------
    def grow_local(self, jid: int, node: int, mb: int) -> None:
        """Give job ``jid`` ``mb`` more local DRAM on ``node``."""
        alloc = self._alloc_of(jid, node)
        if mb <= 0:
            raise AllocationError(f"grow_local needs positive MB, got {mb}")
        free = int(self.capacity_mb[node] - self.local_used_mb[node] - self.lent_mb[node])
        if mb > free:
            raise AllocationError(f"node {node}: {free}MB free, need {mb}MB")
        self.local_used_mb[node] += mb
        alloc.local_mb[node] = alloc.local_mb.get(node, 0) + mb

    def shrink_local(self, jid: int, node: int, mb: int) -> None:
        """Take ``mb`` of local DRAM on ``node`` back from job ``jid``."""
        alloc = self._alloc_of(jid, node)
        have = alloc.local_mb.get(node, 0)
        if mb <= 0 or mb > have:
            raise AllocationError(
                f"shrink_local {mb}MB invalid; job {jid} holds {have}MB on {node}"
            )
        self.local_used_mb[node] -= mb
        alloc.local_mb[node] = have - mb

    def add_remote(self, jid: int, node: int, lender: int, mb: int) -> None:
        """Borrow ``mb`` from ``lender`` on behalf of compute node ``node``."""
        alloc = self._alloc_of(jid, node)
        if mb <= 0:
            raise AllocationError(f"add_remote needs positive MB, got {mb}")
        if lender == node:
            raise AllocationError(f"node {node} cannot lend remote memory to itself")
        free = int(
            self.capacity_mb[lender] - self.local_used_mb[lender] - self.lent_mb[lender]
        )
        if mb > free:
            raise AllocationError(f"lender {lender}: {free}MB free, need {mb}MB")
        self.lent_mb[lender] += mb
        self.lender_jobs[lender][jid] = self.lender_jobs[lender].get(jid, 0) + mb
        node_map = alloc.remote_mb.setdefault(node, {})
        node_map[lender] = node_map.get(lender, 0) + mb

    def remove_remote(self, jid: int, node: int, lender: int, mb: int) -> None:
        """Return ``mb`` borrowed from ``lender`` for compute node ``node``."""
        alloc = self._alloc_of(jid, node)
        node_map = alloc.remote_mb.get(node, {})
        have = node_map.get(lender, 0)
        if mb <= 0 or mb > have:
            raise AllocationError(
                f"remove_remote {mb}MB invalid; borrowing {have}MB from {lender}"
            )
        self.lent_mb[lender] -= mb
        rec = self.lender_jobs[lender]
        rec[jid] -= mb
        if rec[jid] <= 0:
            del rec[jid]
        node_map[lender] = have - mb
        if node_map[lender] == 0:
            del node_map[lender]
        if not node_map and node in alloc.remote_mb:
            del alloc.remote_mb[node]

    def _alloc_of(self, jid: int, node: int) -> JobAllocation:
        alloc = self.allocations.get(jid)
        if alloc is None:
            raise AllocationError(f"job {jid} is not allocated")
        if node not in alloc.nodes:
            raise AllocationError(f"node {node} is not a compute node of job {jid}")
        return alloc

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`AllocationError` if any ledger invariant is broken."""
        if (self.local_used_mb < 0).any() or (self.lent_mb < 0).any():
            raise AllocationError("negative ledger entry")
        if (self.local_used_mb + self.lent_mb > self.capacity_mb).any():
            raise AllocationError("node over-committed beyond capacity")
        # Cross-check allocations against ledgers.
        local = np.zeros(self.n_nodes, dtype=np.int64)
        lent = np.zeros(self.n_nodes, dtype=np.int64)
        busy_nodes: set[int] = set()
        for jid, alloc in self.allocations.items():
            try:
                alloc.check_conservation()
            except ValueError as exc:
                raise AllocationError(f"job {jid}: {exc}") from exc
            for node in alloc.nodes:
                if node in busy_nodes:
                    raise AllocationError(f"node {node} allocated to two jobs")
                busy_nodes.add(node)
                if self.job_on_node[node] != jid:
                    raise AllocationError(f"job_on_node[{node}] != {jid}")
            for node, mb in alloc.local_mb.items():
                local[node] += mb
            for node, lender_map in alloc.remote_mb.items():
                for lender, mb in lender_map.items():
                    lent[lender] += mb
                    if self.lender_jobs[lender].get(jid, 0) < mb - sum(
                        m.get(lender, 0)
                        for n2, m in alloc.remote_mb.items()
                        if n2 != node
                    ):
                        pass  # aggregate check below covers totals
        if not np.array_equal(local, self.local_used_mb):
            raise AllocationError("local_used ledger out of sync with allocations")
        if not np.array_equal(lent, self.lent_mb):
            raise AllocationError("lent ledger out of sync with allocations")
        if busy_nodes != set(np.flatnonzero(self.busy)):
            raise AllocationError("busy mask out of sync with allocations")
        for lender, rec in enumerate(self.lender_jobs):
            if sum(rec.values()) != self.lent_mb[lender]:
                raise AllocationError(f"lender_jobs out of sync on node {lender}")
