"""System configuration (paper Table 4).

A :class:`SystemConfig` describes one simulated machine: node count, node
memory classes (*normal* and *large* nodes, large = double capacity),
scheduler cadence, and the dynamic-policy update interval.

The paper's x-axis "total system memory (%)" normalises the provisioned
memory by an all-large-node (128 GB/node) system.  The eight levels it
sweeps — 37, 43, 50, 57, 62, 75, 87, 100 — correspond to the following
(normal-node capacity, fraction of large nodes) pairs, with large nodes
always 128 GB:

====== ================= ==================
level  normal node (GB)  fraction large
====== ================= ==================
 37        32                 0.15
 43        32                 0.25
 50        64                 0.00
 57        64                 0.15
 62        64                 0.25
 75        64                 0.50
 87        64                 0.75
100       128                 1.00
====== ================= ==================

(e.g. 0.25·128 + 0.75·32 = 56 GB mean ⇒ 56/128 = 43.75% ≈ "43").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from .errors import ConfigError
from .units import gb_to_mb

#: Reference large-node capacity (GB) used for normalisation.
LARGE_NODE_GB = 128

#: Paper Table 4 memory levels -> (normal node GB, fraction of large nodes).
#: Level 25 (all 32 GB nodes) appears only in Fig. 7's "Sys 25%" panels.
MEMORY_LEVELS: Dict[int, Tuple[int, float]] = {
    25: (32, 0.00),
    37: (32, 0.15),
    43: (32, 0.25),
    50: (64, 0.00),
    57: (64, 0.15),
    62: (64, 0.25),
    75: (64, 0.50),
    87: (64, 0.75),
    100: (128, 1.00),
}

#: Fractions of large nodes swept in Table 4 (with 64 GB normal nodes).
LARGE_NODE_FRACTIONS = (0.0, 0.15, 0.25, 0.50, 0.75, 1.00)


@dataclass(frozen=True)
class SystemConfig:
    """One simulated system (paper Table 4 row)."""

    n_nodes: int = 1024
    cores_per_node: int = 32
    normal_mem_gb: int = 64
    large_mem_gb: int = 128
    frac_large_nodes: float = 0.0
    sched_interval: float = 30.0
    backfill_interval: float = 30.0
    queue_depth: int = 100
    backfill_depth: int = 100
    update_interval: float = 300.0  # dynamic policy: ~5 minutes (paper 2.2)
    #: "backfill" (Table 4) or "fcfs" (ablation: no out-of-order starts).
    scheduling: str = "backfill"
    #: Kill jobs at their wall-time limit (real Slurm behaviour; off by
    #: default because the paper's simulator runs jobs to completion and
    #: uses limits only for backfill reservations).
    enforce_walltime: bool = False
    node_bw_gbps: float = 100.0  # injection bandwidth available for lending
    cost_per_node_usd: float = 10_154.0  # excl. memory (Table 4, [27])
    cost_per_128gb_usd: float = 1_280.0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigError(f"n_nodes must be positive, got {self.n_nodes}")
        if not (0.0 <= self.frac_large_nodes <= 1.0):
            raise ConfigError(
                f"frac_large_nodes must be in [0,1], got {self.frac_large_nodes}"
            )
        if self.normal_mem_gb <= 0 or self.large_mem_gb < self.normal_mem_gb:
            raise ConfigError(
                f"invalid node memory sizes {self.normal_mem_gb}/{self.large_mem_gb}"
            )
        if self.sched_interval <= 0 or self.update_interval <= 0:
            raise ConfigError("intervals must be positive")
        if self.scheduling not in ("backfill", "fcfs"):
            raise ConfigError(
                f"scheduling must be 'backfill' or 'fcfs', got {self.scheduling!r}"
            )

    # ------------------------------------------------------------------
    # Node composition
    # ------------------------------------------------------------------
    @property
    def n_large_nodes(self) -> int:
        return int(round(self.n_nodes * self.frac_large_nodes))

    @property
    def n_normal_nodes(self) -> int:
        return self.n_nodes - self.n_large_nodes

    @property
    def normal_mem_mb(self) -> int:
        return gb_to_mb(self.normal_mem_gb)

    @property
    def large_mem_mb(self) -> int:
        return gb_to_mb(self.large_mem_gb)

    def total_memory_mb(self) -> int:
        return (
            self.n_normal_nodes * self.normal_mem_mb
            + self.n_large_nodes * self.large_mem_mb
        )

    def memory_fraction(self) -> float:
        """Provisioned memory as a fraction of an all-128GB-node system."""
        full = self.n_nodes * gb_to_mb(LARGE_NODE_GB)
        return self.total_memory_mb() / full

    def memory_percent(self) -> int:
        """Provisioned memory as the paper's integer axis label.

        The paper labels 36.25% as "37"; we snap to the nearest known
        label when within one point, otherwise round to nearest.
        """
        pct = self.memory_fraction() * 100
        nearest = min(MEMORY_LEVELS, key=lambda lvl: abs(lvl - pct))
        if abs(nearest - pct) <= 1.0:
            return nearest
        return int(round(pct))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_memory_level(cls, level: int, n_nodes: int = 1024, **kw) -> "SystemConfig":
        """Build the Table 4 configuration for a paper memory level.

        ``level`` must be one of the keys of :data:`MEMORY_LEVELS`.
        """
        if level not in MEMORY_LEVELS:
            raise ConfigError(
                f"unknown memory level {level}; choose from {sorted(MEMORY_LEVELS)}"
            )
        normal_gb, frac_large = MEMORY_LEVELS[level]
        return cls(
            n_nodes=n_nodes,
            normal_mem_gb=normal_gb,
            large_mem_gb=LARGE_NODE_GB,
            frac_large_nodes=frac_large,
            **kw,
        )

    def with_(self, **kw) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)

    # ------------------------------------------------------------------
    # Cost model (Table 4 + [27])
    # ------------------------------------------------------------------
    def cluster_cost_usd(self) -> float:
        """Total capital cost: per-node base cost plus provisioned memory."""
        mem_cost = (
            self.total_memory_mb() / gb_to_mb(128)
        ) * self.cost_per_128gb_usd
        return self.n_nodes * self.cost_per_node_usd + mem_cost
