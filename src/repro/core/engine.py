"""A minimal deterministic discrete-event engine.

The engine owns the clock and the event queue and dispatches events to
handlers registered per :class:`~repro.core.events.EventKind`.  It is
deliberately tiny: the scheduling *semantics* live in
:mod:`repro.scheduler.simulator`, which registers its handlers here.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .errors import SimulationError
from .events import Event, EventKind, EventQueue

Handler = Callable[["Engine", Event], None]


class Engine:
    """Event loop with a monotone clock and per-kind handlers."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self.events_processed: int = 0
        self._handlers: Dict[EventKind, Handler] = {}
        self._stopped = False

    def on(self, kind: EventKind, handler: Handler) -> None:
        """Register ``handler`` for events of ``kind`` (one per kind)."""
        self._handlers[kind] = handler

    def at(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {kind.name} at {time} before now={self.now}"
            )
        return self.queue.push(time, kind, payload)

    def after(self, delay: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {kind.name}")
        return self.queue.push(self.now + delay, kind, payload)

    def cancel(self, ev: Event) -> None:
        self.queue.cancel(ev)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 100_000_000,
        inclusive: bool = True,
    ) -> float:
        """Process events until the queue drains, ``until`` passes, or stop().

        ``inclusive`` controls the boundary: by default events stamped
        exactly ``until`` are processed; ``inclusive=False`` stops just
        before them (the what-if fork semantics — events at the fork
        time belong to the replayed suffix, so a perturbation injected
        at the fork time interleaves with them in within-tick rank
        order, exactly as a fresh run would order it).

        Returns the final clock value.
        """
        self._stopped = False
        processed = 0
        while not self._stopped:
            nxt = self.queue.peek_time()
            if nxt is None:
                break
            if until is not None and (nxt > until or
                                      (not inclusive and nxt >= until)):
                self.now = until
                break
            ev = self.queue.pop()
            assert ev is not None
            if ev.time < self.now:
                raise SimulationError(
                    f"time went backwards: {ev.time} < {self.now} ({ev.kind.name})"
                )
            self.now = ev.time
            handler = self._handlers.get(ev.kind)
            if handler is None:
                raise SimulationError(f"no handler for event kind {ev.kind.name}")
            handler(self, ev)
            processed += 1
            self.events_processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
        return self.now
