"""Exception hierarchy for the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid system or scenario configuration was supplied."""


class AllocationError(ReproError):
    """A memory/node allocation request violated an invariant."""


class TraceError(ReproError):
    """A workload trace is malformed or cannot be generated."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""
