"""Seeded random-number-generator plumbing.

Every stochastic component of the package accepts either an integer seed
or a ready-made :class:`numpy.random.Generator`.  :func:`ensure_rng`
normalises the two, and :func:`spawn` derives independent child streams so
that sub-components remain decorrelated yet fully reproducible.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a non-deterministic generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` yields a deterministic one; a
    ``Generator`` is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def stable_seed(*parts: Union[int, str], base: Optional[int] = None) -> int:
    """Derive a stable 63-bit seed from heterogeneous key ``parts``.

    Used by the experiment runner so that e.g. (scenario id, repetition)
    always maps to the same stream regardless of execution order.
    """
    import hashlib

    h = hashlib.blake2b(digest_size=8)
    if base is not None:
        h.update(str(base).encode())
    for p in parts:
        h.update(b"\x1f")
        h.update(str(p).encode())
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)


def weighted_choice(
    rng: np.random.Generator, items: Sequence, weights: Sequence[float]
):
    """Choose one of ``items`` with the given (unnormalised) weights."""
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or len(w) != len(items):
        raise ValueError("weights must be 1-D and match items")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    idx = rng.choice(len(items), p=w / total)
    return items[idx]
