"""Core simulation primitives: units, RNG, events, engine, configuration."""

from .config import LARGE_NODE_FRACTIONS, MEMORY_LEVELS, SystemConfig
from .engine import Engine
from .errors import (
    AllocationError,
    ConfigError,
    ReproError,
    SimulationError,
    TraceError,
)
from .events import Event, EventKind, EventQueue
from .rng import ensure_rng, spawn, stable_seed

__all__ = [
    "AllocationError",
    "ConfigError",
    "Engine",
    "Event",
    "EventKind",
    "EventQueue",
    "LARGE_NODE_FRACTIONS",
    "MEMORY_LEVELS",
    "ReproError",
    "SimulationError",
    "SystemConfig",
    "TraceError",
    "ensure_rng",
    "spawn",
    "stable_seed",
]
