"""Discrete-event primitives: event kinds and a deterministic event queue.

The queue orders events by ``(time, rank, sequence)``: ``rank`` encodes the
within-timestamp ordering (finishes before memory updates before scheduler
passes, so freed resources are visible to the scheduler in the same tick)
and ``sequence`` is a monotonically increasing tie-breaker that makes runs
bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Iterator, Optional


class EventKind(IntEnum):
    """Kinds of simulation events, ordered by within-timestamp priority.

    Lower values run first when scheduled at the same simulated time.
    """

    JOB_FINISH = 0
    JOB_KILL = 1
    MEM_UPDATE = 2
    JOB_SUBMIT = 3
    SCHED_PASS = 4
    SAMPLE = 5
    #: telemetry gauge sampling; runs after all state changes of the tick
    TELEMETRY = 6
    END = 7


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled simulation event."""

    time: float
    kind: EventKind
    seq: int
    payload: Any = None

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, int(self.kind), self.seq)


#: Below this heap size compaction is pointless (the scan costs more than
#: the dead entries' memory).
_COMPACT_MIN = 64


@dataclass
class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Events may be *cancelled* lazily: :meth:`cancel` marks the sequence
    number dead and :meth:`pop` skips dead entries.  This is how finish
    events are rescheduled when a job's slowdown changes.  Heavy
    repricing can cancel far more events than are ever popped, so when
    dead entries outnumber live ones the heap is *compacted*: dead
    entries are filtered out and the survivors re-heapified.  Keys are
    unique ``(time, kind, seq)`` triples, so compaction cannot change
    the pop order.
    """

    _heap: list[tuple[float, int, int, Event]] = field(default_factory=list)
    _seq: int = 0
    _dead: set[int] = field(default_factory=set)
    _live: int = 0
    #: live events per kind (indexed by EventKind value); lets periodic
    #: samplers ask "is any real work left?" without scanning the heap
    _live_kinds: list[int] = field(
        default_factory=lambda: [0] * len(EventKind)
    )

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event and return it (its ``seq`` is the cancel handle)."""
        if time != time:  # NaN guard
            raise ValueError("event time is NaN")
        ev = Event(time=time, kind=kind, seq=self._seq, payload=payload)
        heapq.heappush(self._heap, (time, int(kind), ev.seq, ev))
        self._seq += 1
        self._live += 1
        self._live_kinds[int(kind)] += 1
        return ev

    def cancel(self, ev: Event) -> None:
        """Mark ``ev`` as cancelled; it will be skipped on pop."""
        if ev.seq not in self._dead:
            self._dead.add(ev.seq)
            self._live -= 1
            self._live_kinds[int(ev.kind)] -= 1
            if (
                len(self._heap) >= _COMPACT_MIN
                and len(self._dead) * 2 > len(self._heap)
            ):
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant."""
        self._heap = [e for e in self._heap if e[2] not in self._dead]
        self._dead.clear()
        heapq.heapify(self._heap)

    def compact(self) -> None:
        """Eagerly drop all cancelled entries (snapshot hygiene).

        Snapshots serialise the heap; compacting first keeps tombstones
        out of the captured state so forks never inherit dead entries.
        """
        if self._dead:
            self._compact()

    # ------------------------------------------------------------------
    # Snapshot support (see repro.whatif.snapshot)
    # ------------------------------------------------------------------
    def snapshot_entries(self) -> list[tuple[float, int, int, Any]]:
        """Live heap entries as ``(time, kind, seq, payload)`` rows.

        Compacts first, so the rows are exactly the live events.  The
        row order is heap order (not sorted); ``restore_entries``
        re-heapifies, and keys are unique, so pop order round-trips.
        Payloads are shared by reference — callers own keeping the
        referenced objects consistent.
        """
        self.compact()
        return [(t, k, seq, ev.payload) for (t, k, seq, ev) in self._heap]

    def restore_entries(
        self, entries: list[tuple[float, int, int, Any]], seq: int
    ) -> dict[int, Event]:
        """Rebuild the queue in place from :meth:`snapshot_entries` rows.

        ``seq`` restores the monotone sequence counter captured with the
        rows.  Returns the rebuilt events by sequence number so callers
        can rewire handles (e.g. the controller's cancelable finish
        events).
        """
        by_seq: dict[int, Event] = {}
        heap = []
        for t, k, s, payload in entries:
            ev = Event(time=t, kind=EventKind(k), seq=s, payload=payload)
            heap.append((t, k, s, ev))
            by_seq[s] = ev
        heapq.heapify(heap)
        self._heap = heap
        self._dead = set()
        self._live = len(heap)
        counts = [0] * len(EventKind)
        for _, k, _, _ in heap:
            counts[k] += 1
        self._live_kinds = counts
        self._seq = seq
        return by_seq

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        while self._heap:
            _, _, seq, ev = heapq.heappop(self._heap)
            if seq in self._dead:
                self._dead.discard(seq)
                continue
            self._live -= 1
            self._live_kinds[int(ev.kind)] -= 1
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        while self._heap:
            t, _, seq, _ = self._heap[0]
            if seq in self._dead:
                heapq.heappop(self._heap)
                self._dead.discard(seq)
                continue
            return t
        return None

    def has_live_excluding(self, *kinds: EventKind) -> bool:
        """Whether any live event of a kind *not* in ``kinds`` exists.

        The periodic samplers (SAMPLE, TELEMETRY) use this as their
        keep-running predicate.  The naive ``len(queue) > 0`` deadlocks
        into a livelock when two sampler chains are active at once:
        after the workload drains, each chain sees the *other* chain's
        next event in the queue and they reschedule each other forever.
        """
        excluded = {int(k) for k in kinds}
        return any(
            count > 0
            for kind, count in enumerate(self._live_kinds)
            if kind not in excluded
        )

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def drain(self) -> Iterator[Event]:
        """Yield all remaining live events in order (testing helper)."""
        while True:
            ev = self.pop()
            if ev is None:
                return
            yield ev
