"""Units and conversion helpers.

All memory quantities inside the simulator are integer **mebibytes (MB)**
to keep the lend/borrow ledgers exact, and all times are **seconds** as
floats.  These helpers centralise the conversions so magic numbers never
appear at call sites.
"""

from __future__ import annotations

#: Mebibytes per gibibyte.
MB_PER_GB: int = 1024

#: Seconds per minute / hour / day / week.
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 86400.0
WEEK: float = 7 * DAY

#: Memory-class threshold (paper Table 3): a job is "large-memory" when
#: its per-node demand exceeds a normal 64 GB node.
LARGE_MEMORY_THRESHOLD_MB: int = 64 * MB_PER_GB


def gb_to_mb(gb: float) -> int:
    """Convert gibibytes to integer mebibytes (rounded to nearest MB).

    >>> gb_to_mb(64)
    65536
    >>> gb_to_mb(0.5)
    512
    """
    return int(round(gb * MB_PER_GB))


def mb_to_gb(mb: float) -> float:
    """Convert mebibytes to gibibytes.

    >>> mb_to_gb(131072)
    128.0
    """
    return mb / MB_PER_GB


def node_hours(n_nodes: int, seconds: float) -> float:
    """Node-hours consumed by ``n_nodes`` nodes over ``seconds`` seconds.

    >>> node_hours(4, 3600)
    4.0
    """
    return n_nodes * seconds / HOUR
