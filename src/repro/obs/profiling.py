"""Lightweight hot-path profiling hooks.

``perf_section(name)`` wraps the simulator's hot paths (engine run,
scheduling pass, backfill shadow-time estimation, cluster ledger
commits, the runner's workload generation).  Disabled — the default —
it costs one module-global read and returns a shared no-op context
manager, so the instrumented code paths stay effectively free.

Enabled (:func:`enable_profiling`), sections aggregate into a
:class:`PerfAggregator` that tracks call counts, total and *self* wall
time (child sections are subtracted from their parent, flame-graph
style) and renders a flame-style table.  ``benchmarks/bench_obs.py``
drives a profiled run and writes the aggregate to
``benchmarks/output/BENCH_obs.json``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

__all__ = [
    "PerfAggregator",
    "disable_profiling",
    "enable_profiling",
    "perf_section",
    "profiling_active",
]


class _NullSection:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SECTION = _NullSection()


class _Section:
    __slots__ = ("agg", "name", "t0", "child_s")

    def __init__(self, agg: "PerfAggregator", name: str):
        self.agg = agg
        self.name = name
        self.child_s = 0.0

    def __enter__(self):
        self.agg._stack.append(self)
        self.t0 = perf_counter()
        return self

    def __exit__(self, *exc):
        dt = perf_counter() - self.t0
        agg = self.agg
        agg._stack.pop()
        if agg._stack:
            agg._stack[-1].child_s += dt
        stats = agg.stats.setdefault(self.name, [0, 0.0, 0.0, 0.0])
        stats[0] += 1
        stats[1] += dt
        stats[2] += dt - self.child_s
        stats[3] = max(stats[3], dt)
        return False


class PerfAggregator:
    """Per-section call counts and wall times.

    ``stats[name] = [calls, total_s, self_s, max_s]`` where ``self_s``
    excludes time spent in nested sections.
    """

    def __init__(self) -> None:
        self.stats: Dict[str, List[float]] = {}
        self._stack: List[_Section] = []

    def section(self, name: str) -> _Section:
        return _Section(self, name)

    # ------------------------------------------------------------------
    def to_record(self) -> Dict:
        """Plain dict for JSON dumps (sorted by total time, descending)."""
        return {
            name: {
                "calls": int(s[0]),
                "total_s": round(s[1], 6),
                "self_s": round(s[2], 6),
                "max_s": round(s[3], 6),
            }
            for name, s in sorted(
                self.stats.items(), key=lambda kv: (-kv[1][1], kv[0])
            )
        }

    def table(self, limit: Optional[int] = None) -> str:
        """Flame-style text table, hottest section first."""
        rows = sorted(self.stats.items(), key=lambda kv: (-kv[1][1], kv[0]))
        if limit is not None:
            rows = rows[:limit]
        if not rows:
            return "(no profiled sections)"
        name_w = max(len("section"), max(len(n) for n, _ in rows))
        lines = [
            f"{'section'.ljust(name_w)}  {'calls':>9}  {'total s':>9}  "
            f"{'self s':>9}  {'mean us':>9}  {'max ms':>9}"
        ]
        for name, (calls, total, self_s, max_s) in rows:
            mean_us = total / calls * 1e6 if calls else 0.0
            lines.append(
                f"{name.ljust(name_w)}  {int(calls):>9}  {total:>9.3f}  "
                f"{self_s:>9.3f}  {mean_us:>9.1f}  {max_s * 1e3:>9.2f}"
            )
        return "\n".join(lines)


#: The active aggregator, or None (profiling disabled).
_ACTIVE: Optional[PerfAggregator] = None


def enable_profiling() -> PerfAggregator:
    """Turn profiling on and return the (fresh) active aggregator."""
    global _ACTIVE
    _ACTIVE = PerfAggregator()
    return _ACTIVE


def disable_profiling() -> Optional[PerfAggregator]:
    """Turn profiling off; returns the final aggregator, if any."""
    global _ACTIVE
    agg, _ACTIVE = _ACTIVE, None
    return agg


def profiling_active() -> bool:
    return _ACTIVE is not None


def perf_section(name: str):
    """Context manager timing one named section (no-op when disabled)."""
    agg = _ACTIVE
    if agg is None:
        return _NULL_SECTION
    return agg.section(name)
