"""repro.obs — zero-overhead-when-disabled observability.

Four pieces (see ``docs/OBSERVABILITY.md``):

* :mod:`~repro.obs.registry` — deterministic, pickle-safe metrics
  (``Counter`` / ``Gauge`` / ``Histogram``) sampled on a simulated-time
  cadence into time series; parallel workers merge child registries into
  the parent bit-identically.
* :mod:`~repro.obs.tracing` — wall-clock + simulated-time spans of the
  controller tick and the Monitor/Decider/Actuator/Executor phases.
* :mod:`~repro.obs.profiling` — ``perf_section()`` hooks on the
  simulator hot paths, aggregated into a flame-style table
  (``benchmarks/bench_obs.py`` → ``BENCH_obs.json``).
* :mod:`~repro.obs.export` — JSONL, CSV and Prometheus text dumps.

The facade is :class:`~repro.obs.telemetry.Telemetry`; pass one to
``simulate(..., telemetry=...)`` or use the CLI flags
(``repro simulate --telemetry DIR``, ``repro trace DIR``,
``repro campaign ... --telemetry DIR``).
"""

from .console import Console, console
from .export import (
    metrics_csv,
    metrics_jsonl,
    parse_prometheus_text,
    prometheus_text,
)
from .profiling import (
    PerfAggregator,
    disable_profiling,
    enable_profiling,
    perf_section,
    profiling_active,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .report import render_job_trace, render_trace_summary
from .telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from .tracing import Span, SpanTracer

__all__ = [
    "Console",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "PerfAggregator",
    "Span",
    "SpanTracer",
    "Telemetry",
    "console",
    "disable_profiling",
    "enable_profiling",
    "metrics_csv",
    "metrics_jsonl",
    "parse_prometheus_text",
    "perf_section",
    "profiling_active",
    "prometheus_text",
    "render_job_trace",
    "render_trace_summary",
]
