"""repro.obs — zero-overhead-when-disabled observability.

Seven pieces (see ``docs/OBSERVABILITY.md``):

* :mod:`~repro.obs.registry` — deterministic, pickle-safe metrics
  (``Counter`` / ``Gauge`` / ``Histogram``) sampled on a simulated-time
  cadence into time series; parallel workers merge child registries into
  the parent bit-identically.
* :mod:`~repro.obs.tracing` — wall-clock + simulated-time spans of the
  controller tick and the Monitor/Decider/Actuator/Executor phases.
* :mod:`~repro.obs.provenance` — the causal event graph recorded at the
  simulator's decision seams, plus :mod:`~repro.obs.blame` — per-job
  wait-time attribution (``repro explain``).
* :mod:`~repro.obs.diff` — run-divergence bisection between two
  exported runs (``repro diff A B``).
* :mod:`~repro.obs.perfetto` — Chrome trace-event export for the
  Perfetto UI (``repro trace DIR --perfetto out.json``).
* :mod:`~repro.obs.profiling` — ``perf_section()`` hooks on the
  simulator hot paths, aggregated into a flame-style table
  (``benchmarks/bench_obs.py`` → ``BENCH_obs.json``).
* :mod:`~repro.obs.export` — JSONL, CSV and Prometheus text dumps.

The facade is :class:`~repro.obs.telemetry.Telemetry`; pass one to
``simulate(..., telemetry=...)`` or use the CLI flags
(``repro simulate --telemetry DIR``, ``repro trace DIR``,
``repro campaign ... --telemetry DIR``).
"""

from .blame import WAIT_COMPONENTS, BlameAccumulator
from .console import Console, console
from .diff import diff_runs, render_diff
from .export import (
    metrics_csv,
    metrics_jsonl,
    parse_prometheus_text,
    prometheus_text,
)
from .perfetto import perfetto_events, write_perfetto
from .profiling import (
    PerfAggregator,
    disable_profiling,
    enable_profiling,
    perf_section,
    profiling_active,
)
from .provenance import (
    NULL_PROVENANCE,
    NullProvenance,
    ProvenanceLog,
    causal_chain,
    load_provenance,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .report import (
    load_blame,
    render_explain,
    render_job_trace,
    render_trace_summary,
)
from .telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from .tracing import Span, SpanTracer

__all__ = [
    "BlameAccumulator",
    "Console",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROVENANCE",
    "NULL_TELEMETRY",
    "NullProvenance",
    "NullTelemetry",
    "PerfAggregator",
    "ProvenanceLog",
    "Span",
    "SpanTracer",
    "Telemetry",
    "WAIT_COMPONENTS",
    "causal_chain",
    "console",
    "diff_runs",
    "disable_profiling",
    "enable_profiling",
    "load_blame",
    "load_provenance",
    "metrics_csv",
    "metrics_jsonl",
    "parse_prometheus_text",
    "perf_section",
    "perfetto_events",
    "profiling_active",
    "prometheus_text",
    "render_diff",
    "render_explain",
    "render_job_trace",
    "render_trace_summary",
    "write_perfetto",
]
