"""Blame attribution: decomposing job wait time into causes.

Every scheduling pass classifies *why* each still-pending job could not
start, and the accumulator charges the wall-clock interval since the
job's previous attribution to that cause:

* ``hol_blocking`` — enough resources may exist, but the job is behind
  a blocked queue head (FCFS order / backfill window) or short of idle
  nodes taken by other jobs;
* ``local_shortfall`` — the cluster lacks the free local DRAM the
  request needs (the admission pre-check or the baseline's
  fitting-nodes rule failed on memory);
* ``lender_scarcity`` — node counts and local totals pass, but the
  pool cannot assemble the remote complement (borrow planning failed);
* ``memory_node_rule`` — idle nodes exist, but too many are memory
  nodes (lent > 50% capacity) and may not start jobs (paper §2.1);
* ``sched_cadence`` — the residual between submission and the first
  scheduling pass (nothing blocked the job; the controller simply had
  not looked yet).

The components of one job sum to its total queued time (its *wait* for
never-restarted jobs; across all requeue episodes for OOM-restarted
ones) — property-tested in ``tests/test_obs_blame.py``.  The decomposed
slowdown counterpart lives in
:meth:`repro.slowdown.model.ContentionModel.slowdown_breakdown`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "BlameAccumulator",
    "WAIT_CADENCE",
    "WAIT_COMPONENTS",
    "WAIT_HOL",
    "WAIT_LENDER",
    "WAIT_LOCAL",
    "WAIT_MEMNODE",
]

WAIT_HOL = "hol_blocking"
WAIT_LOCAL = "local_shortfall"
WAIT_LENDER = "lender_scarcity"
WAIT_MEMNODE = "memory_node_rule"
WAIT_CADENCE = "sched_cadence"

#: Every wait-time component, in report order.
WAIT_COMPONENTS = (
    WAIT_HOL,
    WAIT_LOCAL,
    WAIT_LENDER,
    WAIT_MEMNODE,
    WAIT_CADENCE,
)


class BlameAccumulator:
    """Per-job wait-time decomposition (driven by the controller)."""

    def __init__(self) -> None:
        #: jid -> {component: seconds} (closed episodes + the open one)
        self.wait: Dict[int, Dict[str, float]] = {}
        #: jid -> total attributed seconds (same increments as ``wait``,
        #: so the per-component sum matches it to float addition order)
        self.total_wait: Dict[int, float] = {}
        self._stamp: Dict[int, float] = {}
        self._reason: Dict[int, str] = {}

    # ------------------------------------------------------------------
    def enqueued(self, jid: int, t: float) -> None:
        """Job entered the pending queue (submit or OOM requeue)."""
        self._stamp[jid] = t
        self._reason[jid] = WAIT_CADENCE

    def attribute(self, jid: int, t: float, reason: Optional[str] = None) -> bool:
        """Charge the interval since the last stamp to ``reason``.

        ``reason=None`` keeps the job's stored reason (used when a pass
        did not examine the job, or at start for the final residual).
        Returns whether the stored reason changed (the controller emits
        a ``wait_blame`` provenance event only on transitions).
        """
        stamp = self._stamp.get(jid)
        if stamp is None:
            return False
        changed = False
        if reason is None:
            reason = self._reason[jid]
        elif reason != self._reason[jid]:
            self._reason[jid] = reason
            changed = True
        dt = t - stamp
        if dt > 0:
            buckets = self.wait.setdefault(jid, {})
            buckets[reason] = buckets.get(reason, 0.0) + dt
            self.total_wait[jid] = self.total_wait.get(jid, 0.0) + dt
        self._stamp[jid] = t
        return changed

    def started(self, jid: int, t: float) -> None:
        """Job left the queue: close the episode on the stored reason."""
        self.attribute(jid, t)
        self._stamp.pop(jid, None)
        self._reason.pop(jid, None)

    # ------------------------------------------------------------------
    # What-if snapshot support (see repro.whatif.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "wait": {jid: dict(b) for jid, b in self.wait.items()},
            "total_wait": dict(self.total_wait),
            "stamp": dict(self._stamp),
            "reason": dict(self._reason),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.wait = {jid: dict(b) for jid, b in state["wait"].items()}
        self.total_wait = dict(state["total_wait"])
        self._stamp = dict(state["stamp"])
        self._reason = dict(state["reason"])

    # ------------------------------------------------------------------
    def reason_of(self, jid: int) -> Optional[str]:
        return self._reason.get(jid)

    def components_of(self, jid: int) -> Dict[str, float]:
        """``{component: seconds}`` over all components (zeros included)."""
        buckets = self.wait.get(jid, {})
        return {c: buckets.get(c, 0.0) for c in WAIT_COMPONENTS}

    def jids(self) -> List[int]:
        return sorted(self.total_wait)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dump (written as ``blame.json`` by the exporter)."""
        jobs = {
            str(jid): {
                "total_wait_s": self.total_wait[jid],
                "wait": {
                    c: v
                    for c, v in sorted(self.wait.get(jid, {}).items())
                },
            }
            for jid in self.jids()
        }
        return {"components": list(WAIT_COMPONENTS), "jobs": jobs}
