"""Control-loop span tracing.

A :class:`Span` records one timed section of the simulation — a
controller tick, one Monitor/Decider/Actuator/Executor phase, a
scheduling/backfill pass — with both coordinates that matter when
debugging a control loop:

* ``sim_t`` — *when in the simulated run* the section happened;
* ``wall_s`` — *how long the host spent* executing it.

Spans are append-only and serialise to JSONL (``spans.jsonl`` in a
telemetry directory).  They intentionally live outside the metrics
registry: wall-clock durations vary across hosts and runs, so they are
excluded from the byte-identical determinism guarantees the registry
dumps make.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Span", "SpanTracer", "aggregate_spans"]


class Span:
    """One timed section: name, simulated time, wall duration, count.

    ``count > 1`` marks an aggregated span (e.g. the Monitor phase over
    all running jobs of one tick, emitted as a single span).
    """

    __slots__ = ("name", "sim_t", "wall_s", "count", "jid", "detail")

    def __init__(self, name: str, sim_t: float, wall_s: float,
                 count: int = 1, jid: Optional[int] = None, detail: str = ""):
        self.name = name
        self.sim_t = sim_t
        self.wall_s = wall_s
        self.count = count
        self.jid = jid
        self.detail = detail

    def to_json(self) -> Dict:
        row: Dict = {"name": self.name, "sim_t": self.sim_t,
                     "wall_s": self.wall_s, "count": self.count}
        if self.jid is not None:
            row["jid"] = self.jid
        if self.detail:
            row["detail"] = self.detail
        return row

    @classmethod
    def from_json(cls, row: Dict) -> "Span":
        return cls(row["name"], float(row["sim_t"]), float(row["wall_s"]),
                   int(row.get("count", 1)), row.get("jid"),
                   row.get("detail", ""))


class SpanTracer:
    """Append-only span recorder."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    @contextmanager
    def span(self, name: str, sim_t: float, jid: Optional[int] = None,
             detail: str = ""):
        t0 = perf_counter()
        try:
            yield
        finally:
            self.spans.append(
                Span(name, sim_t, perf_counter() - t0, 1, jid, detail)
            )

    def add(self, name: str, sim_t: float, wall_s: float, count: int = 1,
            jid: Optional[int] = None, detail: str = "") -> None:
        """Record a pre-measured (possibly aggregated) span."""
        self.spans.append(Span(name, sim_t, wall_s, count, jid, detail))

    def __len__(self) -> int:
        return len(self.spans)

    def to_jsonl(self) -> str:
        return "".join(json.dumps(s.to_json()) + "\n" for s in self.spans)


def aggregate_spans(
    spans: Iterable[Span],
) -> List[Tuple[str, int, int, float, float]]:
    """Aggregate spans by name: (name, spans, calls, total wall s, max wall s).

    ``calls`` sums the per-span ``count`` (one aggregated Monitor span
    covering 40 jobs contributes 40 calls), sorted by total wall time
    descending so the head of the list is the "top-N slowest phases"
    view that ``repro trace`` renders.
    """
    acc: Dict[str, List[float]] = {}
    for s in spans:
        row = acc.setdefault(s.name, [0, 0, 0.0, 0.0])
        row[0] += 1
        row[1] += s.count
        row[2] += s.wall_s
        row[3] = max(row[3], s.wall_s)
    out = [
        (name, int(r[0]), int(r[1]), r[2], r[3]) for name, r in acc.items()
    ]
    out.sort(key=lambda row: (-row[3], row[0]))
    return out
