"""CLI console with verbosity levels.

The CLI routes human-facing *status* lines ("wrote 50 jobs to ...",
campaign progress) through this helper so ``-q/--quiet`` can silence
them and ``-v/--verbose`` can add detail, while machine-consumable
*results* (tables, JSON, CSV) keep printing to stdout unconditionally.

``sys.stdout`` is resolved at call time, not import time, so pytest's
``capsys`` and shell redirection both see the output.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

__all__ = ["Console", "QUIET", "NORMAL", "VERBOSE", "console"]

QUIET = 0
NORMAL = 1
VERBOSE = 2


class Console:
    """Verbosity-aware printer."""

    def __init__(self, verbosity: int = NORMAL, stream: Optional[TextIO] = None):
        self.verbosity = verbosity
        self._stream = stream

    def set_verbosity(self, verbosity: int) -> None:
        self.verbosity = verbosity

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stdout

    # ------------------------------------------------------------------
    def status(self, message: str = "") -> None:
        """Progress/status line; silenced by ``--quiet``."""
        if self.verbosity >= NORMAL:
            print(message, file=self.stream)

    def detail(self, message: str = "") -> None:
        """Extra diagnostics; shown only with ``--verbose``."""
        if self.verbosity >= VERBOSE:
            print(message, file=self.stream)

    def result(self, message: str = "") -> None:
        """Primary command output; always printed."""
        print(message, file=self.stream)


#: Process-wide console used by the CLI (verbosity set in ``main()``).
console = Console()
