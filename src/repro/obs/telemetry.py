"""The telemetry facade wired into ``simulate(..., telemetry=...)``.

One :class:`Telemetry` instance observes one simulation run: it owns the
metrics registry (deterministic, simulated-time driven), the span tracer
(wall-clock, diagnostics only), the phase accumulator that turns the
per-job Monitor/Decider/Actuator timings into one aggregated span per
controller tick, and — after the run — the structured event log, and it
knows how to export all of it to a directory that ``repro trace`` can
read back.

:data:`NULL_TELEMETRY` is the disabled singleton: every hook is a no-op
and the controller/policies pay only an attribute lookup and a call, so
runs without telemetry stay at seed performance.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Union

from .blame import BlameAccumulator
from .export import metrics_csv, metrics_jsonl, prometheus_text
from .provenance import (
    DEFAULT_MAX_PROV_ENTRIES,
    NULL_PROVENANCE,
    ProvenanceLog,
)
from .registry import MetricsRegistry
from .tracing import SpanTracer

__all__ = ["NULL_TELEMETRY", "NullTelemetry", "Telemetry"]

#: Wait/response-time bucket edges (seconds): sub-minute to a day.
TIME_BUCKETS_S = (30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
                  7200.0, 14400.0, 43200.0, 86400.0)

#: Resize-magnitude bucket edges (MB; integers, ledger units).
RESIZE_BUCKETS_MB = (256, 1024, 4096, 16384, 65536, 262144)

#: Default simulated-time sampling cadence — the paper's 5-minute
#: monitoring interval.
DEFAULT_SAMPLE_INTERVAL = 300.0

#: Default event-log ring-buffer bound when telemetry implicitly enables
#: event logging (long campaigns must not grow without bound).
DEFAULT_MAX_LOG_ENTRIES = 200_000


class _PhaseTimer:
    """Accumulates one phase's wall time into the tick accumulator."""

    __slots__ = ("acc", "name", "t0")

    def __init__(self, acc: Dict[str, List[float]], name: str):
        self.acc = acc
        self.name = name

    def __enter__(self):
        self.t0 = perf_counter()
        return self

    def __exit__(self, *exc):
        dt = perf_counter() - self.t0
        row = self.acc.get(self.name)
        if row is None:
            self.acc[self.name] = [1, dt]
        else:
            row[0] += 1
            row[1] += dt
        return False


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class Telemetry:
    """Observability for one simulation run."""

    enabled = True

    def __init__(
        self,
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
        max_log_entries: Optional[int] = DEFAULT_MAX_LOG_ENTRIES,
        trace_spans: bool = True,
        provenance: bool = True,
        max_prov_entries: Optional[int] = DEFAULT_MAX_PROV_ENTRIES,
    ):
        if sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {sample_interval}"
            )
        self.sample_interval = sample_interval
        self.max_log_entries = max_log_entries
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer() if trace_spans else None
        #: causal event graph + wait-time blame (``repro explain``);
        #: ``provenance=False`` keeps the shared disabled singleton
        if provenance:
            self.provenance = ProvenanceLog(max_entries=max_prov_entries)
            self.blame: Optional[BlameAccumulator] = BlameAccumulator()
        else:
            self.provenance = NULL_PROVENANCE
            self.blame = None
        #: the run's structured event log (attached by ``simulate``)
        self.event_log = None
        #: run metadata stamped by ``simulate`` (policy, system, summary)
        self.meta: Dict[str, object] = {}
        self._phase_acc: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # Metric hooks (deterministic; simulated-time driven)
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.registry.inc(name, n)

    def observe_time(self, name: str, seconds: float) -> None:
        self.registry.observe(name, seconds, TIME_BUCKETS_S)

    def observe_resize(self, mb: int) -> None:
        self.registry.observe("resize_mb", mb, RESIZE_BUCKETS_MB)

    def sample_cluster(self, now: float, controller) -> None:
        """Record the gauge set and append one time-series row block.

        All cluster-side values are O(1) reads of the columnar store's
        incremental aggregates — sampling never scans the node arrays.
        """
        reg = self.registry
        c = controller.cluster
        reg.set_gauge("pool_free_local_mb", c.free_local_total, now)
        reg.set_gauge("pool_lent_mb", c.lent_total, now)
        reg.set_gauge("pool_local_used_mb", c.local_used_total, now)
        reg.set_gauge("queue_depth", len(controller.pending), now)
        reg.set_gauge("running_jobs", len(controller.running), now)
        reg.set_gauge("memory_node_count", c.memory_node_count, now)
        reg.set_gauge("busy_nodes", c.busy_count, now)
        reg.set_gauge("startable_nodes", c.startable_count, now)
        # Delta-log overflows force full index re-sorts; a non-zero rate
        # here says FREE_LOG_LIMIT is undersized for the workload.
        reg.set_gauge("free_log_overflows", c.free_log_overflows, now)
        pool = getattr(controller.policy, "pool", None)
        if pool is not None:
            reg.set_gauge(
                "free_index_rebuilds",
                pool.free_index.rebuilds + pool.bestfit_index.rebuilds,
                now,
            )
            reg.set_gauge(
                "free_index_repairs",
                pool.free_index.repairs + pool.bestfit_index.repairs,
                now,
            )
        reg.sample(now)

    # ------------------------------------------------------------------
    # Span/phase hooks (wall clock; diagnostics only)
    # ------------------------------------------------------------------
    def span(self, name: str, sim_t: float, jid: Optional[int] = None,
             detail: str = ""):
        if self.tracer is None:
            return _NULL_CONTEXT
        return self.tracer.span(name, sim_t, jid, detail)

    def phase(self, name: str):
        """Accumulate one (per-job) phase timing into the current tick."""
        if self.tracer is None:
            return _NULL_CONTEXT
        return _PhaseTimer(self._phase_acc, name)

    def flush_phases(self, sim_t: float, prefix: str) -> None:
        """Emit one aggregated span per accumulated phase and reset."""
        if self.tracer is None or not self._phase_acc:
            self._phase_acc.clear()
            return
        for name in sorted(self._phase_acc):
            count, total = self._phase_acc[name]
            self.tracer.add(f"{prefix}.{name}", sim_t, total, int(count))
        self._phase_acc.clear()

    # ------------------------------------------------------------------
    # What-if snapshot support (see repro.whatif.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Capture the deterministic telemetry state.

        Wall-clock diagnostics (tracer spans, phase accumulators) are
        excluded — they are already excluded from determinism
        comparisons, and a fork keeps accumulating into them.  The
        structured event log is captured by the simulator snapshot (it
        is shared with the controller).
        """
        state: Dict[str, object] = {
            "registry": self.registry.snapshot_state(),
            "meta": dict(self.meta),
        }
        if self.provenance.enabled:
            state["provenance"] = self.provenance.snapshot_state()
        if self.blame is not None:
            state["blame"] = self.blame.snapshot_state()
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        self.registry.restore_state(state["registry"])
        self.meta = dict(state["meta"])
        if "provenance" in state:
            self.provenance.restore_state(state["provenance"])
        if "blame" in state:
            self.blame.restore_state(state["blame"])

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def finish(self, result) -> None:
        """Stamp end-of-run metadata (called by ``simulate``)."""
        self.meta.setdefault("policy", result.policy)
        self.meta["summary"] = result.summary()
        self.meta["events_processed"] = result.events_processed

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self, directory: Union[str, Path]) -> Path:
        """Write the run's telemetry into ``directory`` and return it.

        Files: ``metrics.jsonl`` / ``metrics.csv`` / ``metrics.prom``
        (deterministic registry dumps), ``spans.jsonl`` (wall-clock
        spans), ``events.jsonl`` (structured event log),
        ``provenance.jsonl`` / ``blame.json`` (causal graph + wait-time
        attribution, when enabled), ``meta.json``.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "metrics.jsonl").write_text(metrics_jsonl(self.registry))
        (directory / "metrics.csv").write_text(metrics_csv(self.registry))
        (directory / "metrics.prom").write_text(prometheus_text(self.registry))
        if self.tracer is not None:
            (directory / "spans.jsonl").write_text(self.tracer.to_jsonl())
        if self.event_log is not None:
            (directory / "events.jsonl").write_text(
                event_log_jsonl(self.event_log)
            )
            # `repro trace --job` detects ring-buffer truncation from
            # these (an absent key reads as an untruncated legacy dump).
            self.meta["events_logged"] = len(self.event_log)
            self.meta["events_dropped"] = getattr(self.event_log, "dropped", 0)
        if self.provenance.enabled:
            (directory / "provenance.jsonl").write_text(
                self.provenance.to_jsonl()
            )
            self.meta["provenance_events"] = self.provenance.next_eid
            self.meta["provenance_dropped"] = self.provenance.dropped
        if self.blame is not None:
            (directory / "blame.json").write_text(
                json.dumps(self.blame.to_dict(), indent=2, sort_keys=True)
                + "\n"
            )
        (directory / "meta.json").write_text(
            json.dumps(self.meta, indent=2, sort_keys=True, default=str) + "\n"
        )
        return directory


def event_log_jsonl(event_log) -> str:
    """Serialise an :class:`repro.scheduler.eventlog.EventLog` to JSONL.

    Duck-typed (entries with ``time``/``event``/``jid``/``detail``) so
    :mod:`repro.obs` stays import-independent of the scheduler package.
    """
    lines = []
    for e in event_log:
        row: Dict[str, object] = {"t": e.time, "event": e.event}
        if e.jid is not None:
            row["jid"] = e.jid
        if e.detail:
            row["detail"] = e.detail
        lines.append(json.dumps(row))
    return "".join(line + "\n" for line in lines)


class NullTelemetry(Telemetry):
    """Disabled telemetry: every hook is a cheap no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace_spans=False, provenance=False)
        self.tracer = None

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def observe_time(self, name: str, seconds: float) -> None:
        pass

    def observe_resize(self, mb: int) -> None:
        pass

    def sample_cluster(self, now: float, controller) -> None:
        pass

    def span(self, name, sim_t, jid=None, detail=""):
        return _NULL_CONTEXT

    def phase(self, name):
        return _NULL_CONTEXT

    def flush_phases(self, sim_t, prefix) -> None:
        pass

    def finish(self, result) -> None:
        pass


#: Shared disabled instance (controllers default to this).
NULL_TELEMETRY = NullTelemetry()
