"""Telemetry exporters: JSONL, CSV, Prometheus text format.

All three dumps are deterministic functions of the registry content
(sorted metric names, stable float formatting via ``json.dumps`` /
``repr``), which is what makes the serial-vs-parallel byte-identity
guarantee checkable with a plain string comparison.

:func:`parse_prometheus_text` is a deliberately strict mini-parser used
by the tests and the ``make obs-smoke`` target to assert the dump is
well-formed — it is not a general Prometheus client.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Tuple

from .registry import MetricsRegistry

__all__ = [
    "metrics_csv",
    "metrics_jsonl",
    "parse_prometheus_text",
    "prometheus_text",
    "sanitize_metric_name",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+infna]+)$"
)


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """Prometheus-legal metric name (labels are not used; slashes and
    other separators become underscores)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = f"{prefix}_{cleaned}" if prefix else cleaned
    if not _NAME_OK.match(full):
        full = "_" + full
    return full


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def metrics_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per line: counters, gauges, histograms, samples."""
    lines: List[str] = []
    for name in sorted(registry.counters):
        lines.append(json.dumps(
            {"type": "counter", "name": name,
             "value": registry.counters[name].value}))
    for name in sorted(registry.gauges):
        g = registry.gauges[name]
        lines.append(json.dumps(
            {"type": "gauge", "name": name, "value": g.value,
             "last_t": g.last_t}))
    for name in sorted(registry.histograms):
        h = registry.histograms[name]
        lines.append(json.dumps(
            {"type": "histogram", "name": name, "bounds": list(h.bounds),
             "counts": list(h.counts), "sum": h.total, "count": h.count}))
    for t, name, value in registry.series:
        lines.append(json.dumps(
            {"type": "sample", "t": t, "name": name, "value": value}))
    return "".join(line + "\n" for line in lines)


# ----------------------------------------------------------------------
# CSV (time series; tidy long format for plotting)
# ----------------------------------------------------------------------
def metrics_csv(registry: MetricsRegistry) -> str:
    """``t,name,value`` rows of the sampled series (header included)."""
    lines = ["t,name,value"]
    for t, name, value in registry.series:
        lines.append(f"{t!r},{name},{value!r}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def prometheus_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Counters/gauges/histograms in Prometheus text format 0.0.4.

    The sampled time series is not part of this dump (Prometheus scrapes
    are point-in-time); use the JSONL/CSV exports for series.
    """
    out: List[str] = []
    for name in sorted(registry.counters):
        pname = sanitize_metric_name(name, prefix) + "_total"
        out.append(f"# TYPE {pname} counter")
        out.append(f"{pname} {registry.counters[name].value}")
    for name in sorted(registry.gauges):
        pname = sanitize_metric_name(name, prefix)
        out.append(f"# TYPE {pname} gauge")
        out.append(f"{pname} {_fmt(registry.gauges[name].value)}")
    for name in sorted(registry.histograms):
        h = registry.histograms[name]
        pname = sanitize_metric_name(name, prefix)
        out.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for edge, count in zip(h.bounds, h.counts):
            cumulative += count
            out.append(f'{pname}_bucket{{le="{_fmt(edge)}"}} {cumulative}')
        cumulative += h.counts[-1]
        out.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
        out.append(f"{pname}_sum {_fmt(h.total)}")
        out.append(f"{pname}_count {h.count}")
    return "".join(line + "\n" for line in out)


def _fmt(value: float) -> str:
    """Stable scalar formatting: integers without the trailing ``.0``."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse a text-format dump into ``{sample name[+labels]: value}``.

    Raises :class:`ValueError` on any malformed line; the obs smoke test
    uses this to assert the exporter's output stays well-formed.
    """
    samples: Dict[str, float] = {}
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: malformed TYPE line {line!r}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            samples[name + labels] = float(value)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value {value!r}") from exc
        base = re.sub(r"_(total|bucket|sum|count)$", "", name)
        if base not in typed and name not in typed:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding TYPE line"
            )
    return samples


# ----------------------------------------------------------------------
# Series helpers (timeline integration)
# ----------------------------------------------------------------------
def series_of(registry: MetricsRegistry, name: str) -> Tuple[List[float], List[float]]:
    """(times, values) of one sampled metric, in time order."""
    times: List[float] = []
    values: List[float] = []
    for t, n, v in registry.series:
        if n == name:
            times.append(t)
            values.append(v)
    return times, values


def series_names(registry: MetricsRegistry) -> List[str]:
    """Sorted names appearing in the sampled series."""
    return sorted({n for _, n, _ in registry.series})
