"""Run-divergence bisection over exported telemetry directories.

``repro diff A B`` compares the *deterministic* artifacts of two runs —
``provenance.jsonl``, ``events.jsonl``, ``metrics.jsonl``,
``metrics.prom`` — line by line, and localises the **first divergent
event** between them.  Wall-clock artifacts (``spans.jsonl``,
``meta.json``) are deliberately excluded: two identical-seed runs must
diff clean even though their span timings differ.

When the divergence falls in ``provenance.jsonl``, the report renders
both runs' *causal chains* up to the divergent event, so the first
decision that split the runs is visible with its full ancestry — the
bisection primitive behind "these two runs should have been identical,
where did they fork?".
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .provenance import causal_chain, load_provenance, render_row

__all__ = ["DIFF_FILES", "diff_runs", "render_diff"]

PathLike = Union[str, Path]

#: Deterministic artifacts, compared in causal order: the provenance
#: stream diverges at (or before) whatever made the other files differ.
DIFF_FILES = (
    "provenance.jsonl",
    "events.jsonl",
    "metrics.jsonl",
    "metrics.prom",
)


def diff_runs(dir_a: PathLike, dir_b: PathLike) -> Optional[Dict[str, object]]:
    """First divergence between two telemetry directories, or ``None``.

    Returns ``{"file", "line", "a", "b"}`` — 1-based line number and the
    two sides' lines (``None`` for a side whose file ended early;
    ``line`` 0 when the file exists on only one side).  Files absent
    from *both* directories are skipped, so metrics-only campaign dumps
    compare on whatever they share.
    """
    dir_a, dir_b = Path(dir_a), Path(dir_b)
    for name in DIFF_FILES:
        pa, pb = dir_a / name, dir_b / name
        has_a, has_b = pa.exists(), pb.exists()
        if not has_a and not has_b:
            continue
        if has_a != has_b:
            return {
                "file": name,
                "line": 0,
                "a": "<present>" if has_a else "<missing file>",
                "b": "<present>" if has_b else "<missing file>",
            }
        lines_a = pa.read_text().splitlines()
        lines_b = pb.read_text().splitlines()
        for i, (la, lb) in enumerate(zip(lines_a, lines_b)):
            if la != lb:
                return {"file": name, "line": i + 1, "a": la, "b": lb}
        if len(lines_a) != len(lines_b):
            i = min(len(lines_a), len(lines_b))
            return {
                "file": name,
                "line": i + 1,
                "a": lines_a[i] if i < len(lines_a) else None,
                "b": lines_b[i] if i < len(lines_b) else None,
            }
    return None


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _context_block(path: Path, line: int, context: int) -> List[str]:
    """±``context`` lines around 1-based ``line`` with a ``>`` marker."""
    if not path.exists():
        return [f"  (no {path.name})"]
    lines = path.read_text().splitlines()
    lo = max(0, line - 1 - context)
    hi = min(len(lines), line + context)
    out = []
    for i in range(lo, hi):
        marker = ">" if i == line - 1 else " "
        out.append(f"  {marker} {i + 1:>6}  {lines[i]}")
    if line - 1 >= len(lines):
        out.append(f"  > {line:>6}  <end of file>")
    return out


def _prov_chain_block(
    directory: Path, line: Optional[str], label: str
) -> List[str]:
    """Causal ancestry of the divergent provenance event on one side."""
    if not line:
        return [f"  {label}: stream ended before this event"]
    try:
        eid = json.loads(line)["eid"]
    except (ValueError, KeyError, TypeError):
        return [f"  {label}: unparseable provenance row: {line!r}"]
    rows = load_provenance(directory)
    chain, missing = causal_chain(rows, eid)
    out = [f"  {label}: causal chain of divergent event #{eid}"]
    out += ["    " + render_row(row) for row in chain]
    if missing:
        out.append(f"    [truncated: {missing} ancestor(s) evicted]")
    return out


def render_diff(
    dir_a: PathLike,
    dir_b: PathLike,
    divergence: Optional[Dict[str, object]],
    context: int = 3,
) -> str:
    """Human-readable report for a :func:`diff_runs` result."""
    dir_a, dir_b = Path(dir_a), Path(dir_b)
    if divergence is None:
        return (
            f"runs are identical across {', '.join(DIFF_FILES)}\n"
            f"  A: {dir_a}\n  B: {dir_b}"
        )
    name = str(divergence["file"])
    line = int(divergence["line"])  # type: ignore[arg-type]
    parts = [
        f"runs diverge in {name} at line {line}",
        f"  A: {dir_a}",
        f"  B: {dir_b}",
        "",
        f"--- A: {name}",
        *_context_block(dir_a / name, line, context),
        f"+++ B: {name}",
        *_context_block(dir_b / name, line, context),
    ]
    if name == "provenance.jsonl" and line > 0:
        parts += [
            "",
            "causal context (walk-back from the first divergent event):",
            *_prov_chain_block(
                dir_a, divergence.get("a"), "A"  # type: ignore[arg-type]
            ),
            *_prov_chain_block(
                dir_b, divergence.get("b"), "B"  # type: ignore[arg-type]
            ),
        ]
    return "\n".join(parts)
