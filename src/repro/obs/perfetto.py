"""Perfetto / Chrome trace-event export of a telemetry directory.

``repro trace DIR --perfetto out.json`` converts a run's exported
telemetry into the Chrome trace-event JSON format that Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load natively:

* **jobs** process — one track per job: a ``wait`` slice from submit to
  start, a ``run`` slice from start to finish/timeout/OOM, and instant
  markers for resizes and OOM kills (from ``events.jsonl``);
* **provenance** process — every causal event as an instant carrying
  its ``eid``/``parents``/payload in ``args`` (from
  ``provenance.jsonl``);
* **counter** tracks — the sampled gauge series (queue depth, pool
  occupancy, ...) as ``ph: "C"`` counters (from ``metrics.jsonl``);
* **spans** process — the wall-clock diagnostic spans plotted at their
  simulated-time anchors (from ``spans.jsonl``).

Timestamps are simulated seconds scaled to microseconds, so the
Perfetto timeline reads directly in simulated time.  The dump is
deterministic (stable sort, sorted keys): identical-seed runs export
identical job/provenance/counter tracks; only the spans process carries
wall-clock durations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .provenance import load_provenance
from .report import (
    load_events,
    load_meta,
    load_metrics_records,
    load_spans,
    samples_by_name,
)

__all__ = ["perfetto_events", "perfetto_json", "write_perfetto"]

PathLike = Union[str, Path]

#: Synthetic process ids, one per track family.
PID_JOBS = 1
PID_PROVENANCE = 2
PID_COUNTERS = 3
PID_SPANS = 4

_PROCESS_NAMES = {
    PID_JOBS: "jobs",
    PID_PROVENANCE: "provenance",
    PID_COUNTERS: "counters",
    PID_SPANS: "spans (wall-clock diagnostics)",
}

#: Terminal lifecycle markers closing a job's ``run`` slice.
_RUN_END = {"finish": "run", "timeout": "run (timeout)", "oom-kill": "run (oom)"}


def _us(t: float) -> int:
    """Simulated seconds → integer microseconds (trace-event unit)."""
    return int(round(float(t) * 1e6))


def _job_events(events: List[Dict]) -> List[Dict]:
    """Wait/run slices and instants per job from the event log."""
    out: List[Dict] = []
    submit_t: Dict[int, float] = {}
    start_t: Dict[int, float] = {}
    for e in events:
        jid = e.get("jid")
        if jid is None:
            continue
        kind = e["event"]
        t = float(e["t"])
        if kind == "submit":
            submit_t[jid] = t
        elif kind == "start":
            sub = submit_t.pop(jid, None)
            if sub is not None and t > sub:
                out.append({
                    "name": "wait", "ph": "X", "pid": PID_JOBS, "tid": jid,
                    "ts": _us(sub), "dur": _us(t) - _us(sub),
                })
            start_t[jid] = t
        elif kind in _RUN_END:
            beg = start_t.pop(jid, None)
            if beg is not None:
                out.append({
                    "name": _RUN_END[kind], "ph": "X",
                    "pid": PID_JOBS, "tid": jid,
                    "ts": _us(beg), "dur": max(_us(t) - _us(beg), 1),
                })
            if kind == "oom-kill":
                # The kill requeues the job: a fresh wait opens here.
                submit_t[jid] = t
                out.append({
                    "name": "oom-kill", "ph": "i", "s": "t",
                    "pid": PID_JOBS, "tid": jid, "ts": _us(t),
                    "args": {"detail": e.get("detail", "")},
                })
        elif kind in ("resize", "unrunnable"):
            out.append({
                "name": kind, "ph": "i", "s": "t",
                "pid": PID_JOBS, "tid": jid, "ts": _us(t),
                "args": {"detail": e.get("detail", "")},
            })
    return out


def _provenance_events(rows: List[Dict]) -> List[Dict]:
    out: List[Dict] = []
    for row in rows:
        args: Dict[str, object] = {"eid": row["eid"]}
        if row.get("parents"):
            args["parents"] = row["parents"]
        if row.get("data"):
            args.update(row["data"])
        out.append({
            "name": row["kind"], "ph": "i", "s": "t",
            "pid": PID_PROVENANCE, "tid": row.get("jid", 0),
            "ts": _us(row["t"]), "args": args,
        })
    return out


def _counter_events(records: List[Dict]) -> List[Dict]:
    out: List[Dict] = []
    for name in sorted(samples := samples_by_name(records)):
        times, values = samples[name]
        for t, v in zip(times, values):
            out.append({
                "name": name, "ph": "C", "pid": PID_COUNTERS, "tid": 0,
                "ts": _us(t), "args": {"value": v},
            })
    return out


def _span_events(spans) -> List[Dict]:
    out: List[Dict] = []
    for s in spans:
        ev: Dict[str, object] = {
            "name": s.name, "ph": "X", "pid": PID_SPANS, "tid": 0,
            "ts": _us(s.sim_t), "dur": max(int(round(s.wall_s * 1e6)), 1),
        }
        if s.jid is not None:
            ev["args"] = {"jid": s.jid}
        out.append(ev)
    return out


def perfetto_events(directory: PathLike) -> List[Dict]:
    """All trace events of one telemetry directory, deterministic order."""
    directory = Path(directory)
    events: List[Dict] = []
    for pid, name in sorted(_PROCESS_NAMES.items()):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    events += _job_events(load_events(directory))
    events += _provenance_events(load_provenance(directory))
    events += _counter_events(load_metrics_records(directory))
    events += _span_events(load_spans(directory))
    # Stable deterministic order: metadata first, then by time/track.
    events.sort(
        key=lambda e: (e["ph"] != "M", e.get("ts", 0), e["pid"],
                       e.get("tid", 0), e["name"])
    )
    return events


def perfetto_json(directory: PathLike) -> str:
    """The trace-event JSON document for one telemetry directory."""
    meta = load_meta(Path(directory))
    doc = {
        "traceEvents": perfetto_events(directory),
        "displayTimeUnit": "ms",
        "otherData": {"policy": meta.get("policy", "")},
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def write_perfetto(directory: PathLike, out: Optional[PathLike] = None) -> Path:
    """Write ``trace.perfetto.json`` (or ``out``) and return its path."""
    directory = Path(directory)
    path = Path(out) if out is not None else directory / "trace.perfetto.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(perfetto_json(directory))
    return path
