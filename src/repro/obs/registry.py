"""Deterministic metrics registry.

Three metric kinds, all plain picklable dataclass-style objects so
process-pool workers can ship a registry (or its :meth:`~MetricsRegistry.
to_dict` dump) back to the parent, which merges child registries
deterministically:

* :class:`Counter` — monotonically increasing integer;
* :class:`Gauge` — last-written value, stamped with the simulated time
  of the write so merges are order-independent;
* :class:`Histogram` — fixed, explicit bucket boundaries (no dynamic
  rebucketing: two histograms merge only if their bounds are identical).

Time series come from :meth:`MetricsRegistry.sample`: each call appends
one ``(t, name, value)`` row per counter and gauge, in sorted-name
order, so a registry's serialisation is a pure function of the simulated
run — never of wall-clock, host, or worker placement.  Wall-clock data
belongs in :mod:`repro.obs.tracing` / :mod:`repro.obs.profiling`, which
are exported separately and excluded from determinism comparisons.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += int(n)


class Gauge:
    """Last-value metric, stamped with the simulated time of the write.

    The stamp makes merging deterministic: the sample with the greater
    ``last_t`` wins regardless of merge order (ties: greater value).
    """

    __slots__ = ("name", "value", "last_t")

    def __init__(self, name: str, value: float = 0.0, last_t: float = float("-inf")):
        self.name = name
        self.value = value
        self.last_t = last_t

    def set(self, value: float, t: float = 0.0) -> None:
        self.value = value
        self.last_t = t


class Histogram:
    """Fixed-boundary histogram.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything above the last edge.  An
    observation ``v`` lands in the first bucket with ``v <= edge``
    (Prometheus ``le`` semantics).
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float]):
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError(f"histogram {name}: empty bucket bounds")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name}: bounds must be strictly increasing, got {edges}"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # First edge >= value is the bucket (le semantics); past the last
        # edge, bisect returns len(bounds) == the overflow slot.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += float(value)
        self.count += 1

    def bucket_items(self) -> List[Tuple[str, int]]:
        """(upper-edge label, count) pairs including the +Inf bucket."""
        labels = [repr(edge) for edge in self.bounds] + ["+Inf"]
        return list(zip(labels, self.counts))


class MetricsRegistry:
    """Named metrics plus the sampled time series.

    Deterministic by construction: iteration and serialisation are
    always in sorted-name order, values derive from simulated state
    only, and :meth:`merge` is order-independent.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: sampled rows, in append order: (sim time, metric name, value)
        self.series: List[Tuple[float, str, float]] = []

    # ------------------------------------------------------------------
    # Metric accessors (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            if bounds is None:
                raise ValueError(f"histogram {name} does not exist; pass bounds")
            h = self.histograms[name] = Histogram(name, bounds)
        elif bounds is not None and tuple(float(b) for b in bounds) != h.bounds:
            raise ValueError(
                f"histogram {name} already registered with bounds {h.bounds}"
            )
        return h

    # Convenience wrappers used on the instrumentation sites.
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float, t: float = 0.0) -> None:
        self.gauge(name).set(value, t)

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None) -> None:
        self.histogram(name, bounds).observe(value)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, t: float) -> None:
        """Append one time-series row per counter and gauge at time ``t``."""
        for name in sorted(self.counters):
            self.series.append((t, name, float(self.counters[name].value)))
        for name in sorted(self.gauges):
            self.series.append((t, name, self.gauges[name].value))

    # ------------------------------------------------------------------
    # Serialisation (plain dicts; stable key order)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "counters": {n: self.counters[n].value for n in sorted(self.counters)},
            "gauges": {
                n: [self.gauges[n].value, self.gauges[n].last_t]
                for n in sorted(self.gauges)
            },
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for n, h in sorted(self.histograms.items())
            },
            "series": [list(row) for row in self.series],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MetricsRegistry":
        reg = cls()
        for name, value in data.get("counters", {}).items():
            reg.counters[name] = Counter(name, value)
        for name, (value, last_t) in data.get("gauges", {}).items():
            reg.gauges[name] = Gauge(name, value, last_t)
        for name, h in data.get("histograms", {}).items():
            hist = Histogram(name, h["bounds"])
            hist.counts = [int(c) for c in h["counts"]]
            hist.total = float(h["sum"])
            hist.count = int(h["count"])
            reg.histograms[name] = hist
        reg.series = [(float(t), str(n), float(v)) for t, n, v in data.get("series", [])]
        return reg

    # ------------------------------------------------------------------
    # What-if snapshot support (see repro.whatif.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict:
        """In-process capture for what-if forks.

        Cheaper than :meth:`to_dict`: the series (the bulky part) is
        append-only during a run, so only its length is recorded and
        :meth:`restore_state` truncates back to it.
        """
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: (g.value, g.last_t) for n, g in self.gauges.items()},
            "histograms": {
                n: (h.bounds, tuple(h.counts), h.total, h.count)
                for n, h in self.histograms.items()
            },
            "series_len": len(self.series),
        }

    def restore_state(self, state: Dict) -> None:
        """Restore :meth:`snapshot_state` in place (reusable snapshot)."""
        self.counters = {n: Counter(n, v) for n, v in state["counters"].items()}
        self.gauges = {n: Gauge(n, v, t) for n, (v, t) in state["gauges"].items()}
        hists: Dict[str, Histogram] = {}
        for n, (bounds, counts, total, count) in state["histograms"].items():
            h = Histogram(n, bounds)
            h.counts = list(counts)
            h.total = total
            h.count = count
            hists[n] = h
        self.histograms = hists
        del self.series[state["series_len"]:]

    # ------------------------------------------------------------------
    # Merging (parallel workers -> parent)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold ``other`` into this registry.

        Counters and histograms add; gauges keep the later-stamped
        sample (ties: the greater value); series rows concatenate and
        re-sort by ``(t, name)``.  With ``prefix`` every incoming metric
        name is namespaced (campaigns prefix per-scenario registries so
        scenarios never collide and the merged dump is independent of
        completion order).
        """
        for name, c in other.counters.items():
            self.counter(prefix + name).inc(c.value)
        for name, g in other.gauges.items():
            mine = self.gauge(prefix + name)
            if (g.last_t, g.value) >= (mine.last_t, mine.value):
                mine.set(g.value, g.last_t)
        for name, h in other.histograms.items():
            mine = self.histogram(prefix + name, h.bounds)
            for i, c in enumerate(h.counts):
                mine.counts[i] += c
            mine.total += h.total
            mine.count += h.count
        self.series.extend((t, prefix + n, v) for t, n, v in other.series)
        self.series.sort(key=lambda row: (row[0], row[1]))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)
