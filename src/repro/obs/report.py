"""Human-readable reports over an exported telemetry directory.

``repro trace DIR`` renders these views of a directory written by
:meth:`repro.obs.telemetry.Telemetry.export`:

* a run summary — counters, histogram digests, per-event-kind counts,
  and the top-N slowest control-loop phases by total wall time;
* a per-job lifecycle reconstruction ("explain job N") from the
  structured event log, with queue-wait / runtime / response-time
  derived in place.

Every file of the directory layout is optional, so the same command
also works on a merged campaign telemetry directory (metrics only, no
spans or events).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .blame import WAIT_COMPONENTS
from .provenance import causal_chain, load_provenance, render_row
from .tracing import Span, aggregate_spans

__all__ = [
    "load_blame",
    "load_events",
    "load_meta",
    "load_metrics_records",
    "load_spans",
    "render_explain",
    "render_job_trace",
    "render_trace_summary",
    "samples_by_name",
]

PathLike = Union[str, Path]

#: Run-summary keys worth a header line (shown when present).
_SUMMARY_KEYS = (
    "n_jobs",
    "makespan_s",
    "throughput_jobs_per_s",
    "median_response_s",
    "oom_kills",
    "unrunnable",
)


def _read_jsonl(path: Path) -> List[Dict]:
    if not path.exists():
        return []
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def load_metrics_records(directory: PathLike) -> List[Dict]:
    """Parsed ``metrics.jsonl`` records (empty list if absent)."""
    return _read_jsonl(Path(directory) / "metrics.jsonl")


def load_spans(directory: PathLike) -> List[Span]:
    """Spans from ``spans.jsonl`` (empty list if absent)."""
    return [
        Span.from_json(row)
        for row in _read_jsonl(Path(directory) / "spans.jsonl")
    ]


def load_events(directory: PathLike) -> List[Dict]:
    """Structured event-log rows from ``events.jsonl`` (empty if absent)."""
    return _read_jsonl(Path(directory) / "events.jsonl")


def load_meta(directory: PathLike) -> Dict:
    """Run metadata from ``meta.json`` (empty dict if absent)."""
    path = Path(directory) / "meta.json"
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def load_blame(directory: PathLike) -> Dict:
    """Wait-blame decomposition from ``blame.json`` (empty if absent)."""
    path = Path(directory) / "blame.json"
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def samples_by_name(
    records: Sequence[Dict],
) -> Dict[str, Tuple[List[float], List[float]]]:
    """``{name: (times, values)}`` of the sampled-series records."""
    out: Dict[str, Tuple[List[float], List[float]]] = {}
    for rec in records:
        if rec.get("type") == "sample":
            times, values = out.setdefault(rec["name"], ([], []))
            times.append(float(rec["t"]))
            values.append(float(rec["value"]))
    return out


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Minimal aligned text table (first column left, rest right)."""
    cells = [[str(h) for h in headers]]
    cells += [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        cols = [row[0].ljust(widths[0])]
        cols += [c.rjust(w) for c, w in zip(row[1:], widths[1:])]
        return "  ".join(cols).rstrip()

    lines = [fmt(cells[0]), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in cells[1:]]
    return "\n".join(lines)


def render_trace_summary(directory: PathLike, top: int = 10) -> str:
    """Run summary of a telemetry directory, ready to print."""
    directory = Path(directory)
    records = load_metrics_records(directory)
    meta = load_meta(directory)
    spans = load_spans(directory)
    events = load_events(directory)

    parts: List[str] = []
    header = f"telemetry: {directory}"
    if meta.get("policy"):
        header += f"  (policy: {meta['policy']})"
    parts.append(header)
    summary = meta.get("summary") or {}
    shown = [
        f"{k}={summary[k]:.6g}" if isinstance(summary[k], float)
        else f"{k}={summary[k]}"
        for k in _SUMMARY_KEYS if k in summary
    ]
    if shown:
        parts.append("  " + "  ".join(shown))
    if meta.get("events_processed") is not None:
        parts.append(f"  engine events processed: {meta['events_processed']}")

    counters = sorted(
        (r["name"], r["value"]) for r in records if r["type"] == "counter"
    )
    if counters:
        parts += ["", "counters", _table(["name", "value"], counters)]

    hists = sorted(
        (r for r in records if r["type"] == "histogram"),
        key=lambda r: r["name"],
    )
    if hists:
        rows = []
        for r in hists:
            mean = r["sum"] / r["count"] if r["count"] else 0.0
            rows.append(
                [r["name"], r["count"], f"{mean:.1f}", f"{r['sum']:.1f}"]
            )
        parts += ["", "histograms",
                  _table(["name", "count", "mean", "sum"], rows)]

    if events:
        counts: Dict[str, int] = {}
        for e in events:
            counts[e["event"]] = counts.get(e["event"], 0) + 1
        parts += ["", f"event log: {len(events)} entries",
                  _table(["event", "count"], sorted(counts.items()))]

    if spans:
        agg = aggregate_spans(spans)
        rows = [
            [name, n_spans, calls, f"{total * 1e3:.2f}", f"{mx * 1e3:.3f}"]
            for name, n_spans, calls, total, mx in agg[:top]
        ]
        parts += [
            "",
            f"slowest phases (top {len(rows)} of {len(agg)}, "
            "by total wall time)",
            _table(["phase", "spans", "calls", "total ms", "max ms"], rows),
        ]
    else:
        parts += ["", "no spans recorded "
                      "(trace_spans=False, or a campaign metrics dump)"]
    return "\n".join(parts)


def _first(events: Sequence[Dict], kind: str) -> Optional[float]:
    for e in events:
        if e["event"] == kind:
            return float(e["t"])
    return None


def _last(events: Sequence[Dict], kinds: Tuple[str, ...]) -> Optional[float]:
    t: Optional[float] = None
    for e in events:
        if e["event"] in kinds:
            t = float(e["t"])
    return t


def render_job_trace(directory: PathLike, jid: int) -> str:
    """Reconstruct one job's lifecycle from the exported event log.

    When the export's ring buffer evicted events (``events_dropped`` in
    ``meta.json``), the reconstruction says so up front — an eviction
    can swallow a job's submit/start, and the derived wait/runtime lines
    below would otherwise silently read as authoritative.
    """
    directory = Path(directory)
    dropped = int(load_meta(directory).get("events_dropped", 0) or 0)
    events = [e for e in load_events(directory) if e.get("jid") == jid]
    spans = [s for s in load_spans(directory) if s.jid == jid]

    lines = [f"job {jid} lifecycle  ({directory})"]
    if dropped:
        lines.append(f"  [truncated: {dropped} events evicted]")
    if not events:
        if not (directory / "events.jsonl").exists():
            lines.append(
                "  no events.jsonl in this directory (metrics-only dump)"
            )
        else:
            lines.append(
                "  no events recorded for this job (unknown jid, or the "
                "ring buffer dropped its history)"
            )
        return "\n".join(lines)
    if dropped and events[0]["event"] != "submit":
        lines.append(
            "  (lifecycle may be incomplete: this job's history starts "
            f"at '{events[0]['event']}', earlier events were evicted)"
        )

    for e in events:
        detail = f"  {e['detail']}" if e.get("detail") else ""
        lines.append(f"  [{float(e['t']):12.1f}s] {e['event']:<10}{detail}")

    submit = _first(events, "submit")
    start = _first(events, "start")
    end = _last(events, ("finish", "timeout"))
    derived: List[str] = []
    if submit is not None and start is not None:
        derived.append(f"waited {start - submit:.1f}s in queue")
    if start is not None and end is not None:
        derived.append(f"ran {end - start:.1f}s")
    if submit is not None and end is not None:
        derived.append(f"response time {end - submit:.1f}s")
    n_resize = sum(1 for e in events if e["event"] == "resize")
    if n_resize:
        derived.append(f"{n_resize} resize(s)")
    n_oom = sum(1 for e in events if e["event"] == "oom-kill")
    if n_oom:
        derived.append(f"{n_oom} OOM restart(s)")
    if derived:
        lines.append("  -> " + "; ".join(derived))
    if spans:
        total = sum(s.wall_s for s in spans)
        lines.append(
            f"  spans touching this job: {len(spans)} "
            f"({total * 1e3:.3f} ms wall)"
        )
    return "\n".join(lines)


def render_explain(directory: PathLike, jid: int, chain_limit: int = 20) -> str:
    """Causal "why" report for one job: lifecycle, blame, ancestry.

    ``repro explain DIR JID`` answers "why did job N wait / run slow?"
    from the exported artifacts alone: the event-log lifecycle, the
    wait-time blame decomposition (components sum to the recorded
    wait), the latest slowdown decomposition with per-lender contention
    contributions, and the causal why-chain walked back through the
    provenance graph from the job's last event.
    """
    directory = Path(directory)
    lines = [render_job_trace(directory, jid)]

    blame = load_blame(directory)
    job_blame = (blame.get("jobs") or {}).get(str(jid))
    if job_blame:
        total = float(job_blame.get("total_wait_s", 0.0))
        comps = job_blame.get("wait", {})
        rows = []
        for name in blame.get("components", WAIT_COMPONENTS):
            sec = float(comps.get(name, 0.0))
            pct = 100.0 * sec / total if total > 0 else 0.0
            rows.append([name, f"{sec:.1f}", f"{pct:.1f}%"])
        rows.append(["= sum", f"{sum(float(v) for v in comps.values()):.1f}",
                     ""])
        rows.append(["recorded wait", f"{total:.1f}", ""])
        lines += [
            "",
            f"wait-time blame (job {jid} waited {total:.1f}s in total)",
            _table(["cause", "seconds", "share"], rows),
        ]
    elif blame:
        lines += ["", f"no wait-blame recorded for job {jid}"]
    else:
        lines += ["", "no blame.json in this directory "
                      "(run exported without provenance)"]

    prov = load_provenance(directory)
    job_rows = [r for r in prov if r.get("jid") == jid]
    slowdowns = [r for r in job_rows if r["kind"] == "slowdown"]
    if slowdowns:
        data = slowdowns[-1].get("data", {})
        s = data.get("new", data.get("slowdown"))
        lines += ["", "latest slowdown decomposition"
                      + (f" (slowdown {float(s):.3f}x)" if s is not None
                         else "")]
        if data.get("base_remote") is not None:
            lines.append(
                f"  base remote-placement term: "
                f"+{float(data['base_remote']):.4f}"
            )
        lenders = data.get("lenders") or []
        if lenders:
            rows = [
                [f"lender {entry['lender']}", entry["mb"],
                 f"{float(entry['oversubscription']):.3f}",
                 f"+{float(entry['contribution']):.4f}"]
                for entry in lenders
            ]
            lines.append(_table(
                ["lender", "MB", "oversub", "contribution"], rows
            ))

    if job_rows:
        last_eid = int(job_rows[-1]["eid"])
        chain, missing = causal_chain(prov, last_eid, limit=chain_limit)
        lines += [
            "",
            f"causal why-chain (walk-back from event #{last_eid}, "
            f"newest first)",
        ]
        lines += ["  " + render_row(row) for row in chain]
        if missing:
            lines.append(f"  [truncated: {missing} ancestor(s) evicted]")
    elif prov:
        lines += ["", f"no provenance events recorded for job {jid}"]
    return "\n".join(lines)
