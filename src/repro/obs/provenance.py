"""Causal provenance: a deterministic, ring-buffered event graph.

Telemetry (PR 4) records *what* happened; this module records *why*.
The controller, the dynamic policy, the memory pool and the cluster's
mutator pub/sub each emit :class:`ProvenanceEvent` records at the
simulator's decision seams — sched passes, Monitor→Decider→Actuator
outcomes, borrow plans with their lender sets, backfill shadow holes,
contention repricings, allocation commits/releases — and every record
carries the event ids of its *parents*, so any outcome can be walked
back to its causes (``repro explain``, ``repro diff``).

Determinism contract: events are stamped with *simulated* time (the
emitter sets :attr:`ProvenanceLog.now` from the engine clock) and ids
are sequential integers, so two identical-seed runs produce
byte-identical ``provenance.jsonl`` dumps.  The log is a ring buffer
(like the event log): ``max_entries`` bounds memory, ``dropped`` counts
evictions, and walks simply stop at evicted parents.

:data:`NULL_PROVENANCE` is the disabled singleton.  Emitters guard with
``if prov.enabled:`` so a disabled run performs no calls and no
allocations at all (guard-tested; see ``tests/test_obs_provenance.py``).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "NULL_PROVENANCE",
    "NullProvenance",
    "ProvenanceEvent",
    "ProvenanceLog",
    "causal_chain",
    "load_provenance",
    "provenance_jsonl",
    "render_row",
]

#: Default ring-buffer bound (events; one full 1024-node campaign run
#: emits a few hundred thousand, so single observed runs keep everything
#: that matters while long campaigns stay bounded).
DEFAULT_MAX_PROV_ENTRIES = 200_000


class ProvenanceEvent:
    """One node of the causal graph."""

    __slots__ = ("eid", "t", "kind", "jid", "parents", "data")

    def __init__(
        self,
        eid: int,
        t: float,
        kind: str,
        jid: Optional[int],
        parents: Tuple[int, ...],
        data: Dict[str, object],
    ):
        self.eid = eid
        self.t = t
        self.kind = kind
        self.jid = jid
        self.parents = parents
        self.data = data

    def to_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"eid": self.eid, "t": self.t, "kind": self.kind}
        if self.jid is not None:
            row["jid"] = self.jid
        if self.parents:
            row["parents"] = list(self.parents)
        if self.data:
            row["data"] = self.data
        return row

    def render(self) -> str:
        jid = f" job {self.jid}" if self.jid is not None else ""
        data = f"  {json.dumps(self.data, sort_keys=True)}" if self.data else ""
        return f"#{self.eid} [{self.t:12.1f}s] {self.kind:<16}{jid}{data}"


class ProvenanceLog:
    """Ring-buffered causal event log for one simulation run.

    ``emit`` stamps each event with :attr:`now` (set by the controller
    from the engine clock before its handlers run) and auto-links it to
    the emitting job's previous event plus the current handler *scope*
    event via :meth:`link` — callers may always pass explicit parents
    instead.
    """

    enabled = True

    def __init__(self, max_entries: Optional[int] = DEFAULT_MAX_PROV_ENTRIES):
        if max_entries is not None and max_entries <= 0:
            raise ValueError(
                f"max_entries must be positive or None, got {max_entries}"
            )
        self.max_entries = max_entries
        self.events: "deque[ProvenanceEvent]" = deque(maxlen=max_entries)
        #: evicted (oldest-first) event count
        self.dropped = 0
        self.next_eid = 0
        #: simulated-time stamp applied to emitted events
        self.now = 0.0
        #: current handler event id (sched pass / mem update / ...)
        self.scope: Optional[int] = None
        #: per-job id of the job's most recent event (parent chaining)
        self.last_of: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def link(self, jid: Optional[int] = None) -> Tuple[int, ...]:
        """Default parent set: the job's last event, then the scope."""
        parents: List[int] = []
        if jid is not None:
            last = self.last_of.get(jid)
            if last is not None:
                parents.append(last)
        if self.scope is not None and self.scope not in parents:
            parents.append(self.scope)
        return tuple(parents)

    def emit(
        self,
        kind: str,
        jid: Optional[int] = None,
        parents: Optional[Sequence[int]] = None,
        **data: object,
    ) -> int:
        """Record one event and return its id.

        ``parents=None`` auto-links via :meth:`link`; pass ``()`` for an
        explicit root event.
        """
        if parents is None:
            parents = self.link(jid)
        eid = self.next_eid
        self.next_eid += 1
        if self.max_entries is not None and len(self.events) == self.max_entries:
            self.dropped += 1  # deque evicts the oldest on append
        self.events.append(
            ProvenanceEvent(eid, self.now, kind, jid, tuple(parents), data)
        )
        if jid is not None:
            self.last_of[jid] = eid
        return eid

    # ------------------------------------------------------------------
    # What-if snapshot support (see repro.whatif.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Capture the log for in-place restore.

        Events are immutable after :meth:`emit`, so the capture shares
        them; only the container and chaining maps are copied.
        """
        return {
            "events": tuple(self.events),
            "dropped": self.dropped,
            "next_eid": self.next_eid,
            "now": self.now,
            "scope": self.scope,
            "last_of": dict(self.last_of),
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`snapshot_state` in place (reusable snapshot)."""
        self.events = deque(state["events"], maxlen=self.max_entries)
        self.dropped = state["dropped"]
        self.next_eid = state["next_eid"]
        self.now = state["now"]
        self.scope = state["scope"]
        self.last_of = dict(state["last_of"])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ProvenanceEvent]:
        return iter(self.events)

    def get(self, eid: int) -> Optional[ProvenanceEvent]:
        """The surviving event with id ``eid`` (O(1); None if evicted)."""
        base = self.next_eid - len(self.events)
        if eid < base or eid >= self.next_eid:
            return None
        return self.events[eid - base]

    def for_job(self, jid: int) -> List[ProvenanceEvent]:
        return [e for e in self.events if e.jid == jid]

    def of_kind(self, kind: str) -> List[ProvenanceEvent]:
        return [e for e in self.events if e.kind == kind]

    def walk_back(
        self, eid: int, limit: int = 50
    ) -> Tuple[List[ProvenanceEvent], int]:
        """The causal ancestry of ``eid``, newest-first.

        Returns ``(events, missing)`` where ``missing`` counts parent
        ids that were evicted from the ring (the walk stops there).
        """
        seen = set()
        frontier = [eid]
        found: List[ProvenanceEvent] = []
        missing = 0
        while frontier and len(found) < limit:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            ev = self.get(cur)
            if ev is None:
                missing += 1
                continue
            found.append(ev)
            frontier.extend(ev.parents)
        found.sort(key=lambda e: -e.eid)
        return found, missing

    # ------------------------------------------------------------------
    def to_rows(self) -> List[Dict[str, object]]:
        """JSON-ready rows, oldest-first (deterministic)."""
        return [e.to_row() for e in self.events]

    def to_jsonl(self) -> str:
        return provenance_jsonl(self.to_rows())


class NullProvenance(ProvenanceLog):
    """Disabled provenance: guards skip it; calls are cheap no-ops."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_entries=None)

    def emit(self, kind, jid=None, parents=None, **data) -> int:
        return -1

    def link(self, jid=None) -> Tuple[int, ...]:
        return ()


#: Shared disabled instance (``NullTelemetry`` and pool default).
NULL_PROVENANCE = NullProvenance()


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def provenance_jsonl(rows: Sequence[Dict[str, object]]) -> str:
    """Deterministic JSONL dump of provenance rows."""
    return "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)


def load_provenance(directory: Union[str, Path]) -> List[Dict]:
    """Rows of ``provenance.jsonl`` in a telemetry dir (empty if absent)."""
    path = Path(directory) / "provenance.jsonl"
    if not path.exists():
        return []
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def causal_chain(
    rows: Sequence[Dict], eid: int, limit: int = 50
) -> Tuple[List[Dict], int]:
    """Offline :meth:`ProvenanceLog.walk_back` over loaded rows."""
    by_eid = {row["eid"]: row for row in rows}
    seen = set()
    frontier = [eid]
    found: List[Dict] = []
    missing = 0
    while frontier and len(found) < limit:
        cur = frontier.pop()
        if cur in seen:
            continue
        seen.add(cur)
        row = by_eid.get(cur)
        if row is None:
            missing += 1
            continue
        found.append(row)
        frontier.extend(row.get("parents", ()))
    found.sort(key=lambda r: -r["eid"])
    return found, missing


def render_row(row: Dict) -> str:
    """One-line rendering of a loaded provenance row."""
    jid = f" job {row['jid']}" if row.get("jid") is not None else ""
    data = row.get("data")
    tail = f"  {json.dumps(data, sort_keys=True)}" if data else ""
    return (
        f"#{row['eid']} [{float(row['t']):12.1f}s] {row['kind']:<16}{jid}{tail}"
    )
