"""Static disaggregated-memory policy (Zacarias et al. [45], paper §2.1).

The job is allocated exactly its submission-time memory request for its
whole lifetime.  Node selection "tries to run the job on nodes with
enough free memory.  If this is not possible, then it will choose nodes
with the most free memory and borrow the remaining memory from other
nodes".  A node that has lent more than half of its capacity becomes a
*memory node*: it keeps lending but cannot start new jobs (enforced by
:meth:`repro.cluster.Cluster.startable`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.allocation import JobAllocation
from ..jobs.job import Job
from .base import AllocationPolicy


class StaticDisaggregatedPolicy(AllocationPolicy):
    """Fixed request-sized allocation backed by the disaggregated pool."""

    name = "static"
    uses_disaggregation = True
    is_dynamic = False

    def _request_of(self, job: Job) -> int:
        """Admission-time per-node memory demand for ``job``.

        The dynamic policy overrides this for jobs that exhausted their
        OOM-retry budget (paper §2.2: "allocate additional resources
        after a specified number of failures").
        """
        return job.mem_request_mb

    def can_ever_run(self, job: Job) -> bool:
        if job.n_nodes > self.cluster.n_nodes:
            return False
        # On an empty system every node serves min(capacity, request)
        # locally and the remainder is borrowed; feasible iff the total
        # request fits the total pool.
        total_request = job.n_nodes * self._request_of(job)
        return total_request <= self.cluster.total_capacity_mb()

    def plan(self, job: Job) -> Optional[JobAllocation]:
        c = self.cluster
        request = self._request_of(job)
        if c.startable_count < job.n_nodes:
            return None
        free_all = c.free_local()
        startable = c.startable()
        # Both branches read the pool's maintained sorted-free indexes
        # instead of argsort-ing per pending job; filtering the index by
        # the startable mask preserves the relative order a subset sort
        # would produce (both are (free, node id)-keyed).
        sel = self.pool.bestfit_index.nodes_in_order()
        sel = sel[startable[sel]]
        # Nodes that can serve the request locally form a suffix of the
        # ascending-free order.
        first_fit = int(np.searchsorted(free_all[sel], request))
        if len(sel) - first_fit >= job.n_nodes:
            # Enough nodes can serve the request locally: best-fit among
            # them (least free first) to preserve big free blocks.
            chosen = sel[first_fit : first_fit + job.n_nodes]
        else:
            # Choose the nodes with the most free memory and borrow the
            # remainder from the pool.
            most_free = self.pool.free_index.nodes_in_order()
            chosen = most_free[startable[most_free]][: job.n_nodes]
        alloc = JobAllocation(nodes=[int(n) for n in chosen])
        deficits = {}
        for n in alloc.nodes:
            local = min(int(free_all[n]), request)
            alloc.local_mb[n] = local
            if local < request:
                deficits[n] = request - local
        if deficits:
            # Lenders may include the job's own (larger) nodes, but every
            # node's planned local allocation is reserved first.
            plans = self.pool.split_borrow(
                deficits, reduce_free=dict(alloc.local_mb)
            )
            if plans is None:
                return None
            for n, plan in plans.items():
                alloc.remote_mb[n] = {lender: mb for lender, mb in plan}
        return alloc
