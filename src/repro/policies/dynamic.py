"""Dynamic disaggregated-memory policy (paper §2.2–2.3).

The initial allocation equals the submission-time request, exactly as in
the static policy.  Once the job runs, the Monitor reports its usage and
the Decider compares usage against the current allocation every update
window (~5 simulated minutes):

* usage **below** allocation → the Actuator deallocates the surplus,
  *remote memory first, then local*;
* usage **above** allocation → the Actuator allocates the deficit,
  *locally if possible, then remotely*, maximising the local-to-remote
  ratio;
* deficit unsatisfiable (the pool is exhausted) → **out of memory**: the
  job is terminated, its resources released, and it is resubmitted
  (Fail/Restart by default, Checkpoint/Restart optionally).

Fairness mitigation (paper §2.2): after ``max_oom_failures`` kills a job
is started with a *static, guaranteed* allocation and is no longer
resized.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..cluster.allocation import JobAllocation
from ..cluster.cluster import Cluster
from ..core.rng import ensure_rng
from ..jobs.job import Job
from .base import UpdateOutcome
from .static import StaticDisaggregatedPolicy


class DynamicDisaggregatedPolicy(StaticDisaggregatedPolicy):
    """Usage-tracking reallocation on top of the static admission rule."""

    name = "dynamic"
    uses_disaggregation = True
    is_dynamic = True

    def __init__(
        self,
        cluster: Cluster,
        headroom_mb: int = 0,
        max_oom_failures: int = 3,
        checkpoint_restart: bool = False,
        monitor_noise: float = 0.0,
        monitor_seed: int = 0,
        oom_priority_boost: bool = False,
        checkpoint_interval: Optional[float] = None,
    ):
        super().__init__(cluster)
        if headroom_mb < 0:
            raise ValueError(f"negative headroom {headroom_mb}")
        if max_oom_failures < 0:
            raise ValueError(f"negative max_oom_failures {max_oom_failures}")
        if monitor_noise < 0:
            raise ValueError(f"negative monitor_noise {monitor_noise}")
        self.headroom_mb = headroom_mb
        self.max_oom_failures = max_oom_failures
        self.checkpoint_restart = checkpoint_restart
        #: relative std-dev of the Monitor's usage readings (0 = perfect;
        #: real LDMS-style telemetry is sampled and noisy — ablation knob)
        self.monitor_noise = monitor_noise
        self._monitor_rng = ensure_rng(monitor_seed)
        #: paper §2.2 fairness mitigation: restarted jobs keep their
        #: original queue priority instead of re-queuing at the tail
        self.oom_priority_boost = oom_priority_boost
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive, got {checkpoint_interval}"
            )
        #: with C/R: work seconds between periodic checkpoints (None =
        #: an idealised checkpoint exactly at the kill point)
        self.checkpoint_interval = checkpoint_interval
        #: jobs pinned to a static guaranteed allocation after repeated OOMs
        self._pinned: Set[int] = set()
        #: highest per-node demand seen before each job's OOM kills
        self._observed_peak: dict[int, int] = {}
        #: per-job rank-scale vector aligned with ``alloc.nodes`` (a
        #: job's node_scale never changes, so this is computed once)
        self._rank_scale_cache: Dict[int, Optional[np.ndarray]] = {}

    # ------------------------------------------------------------------
    def _request_of(self, job: Job) -> int:
        """Pinned jobs are admitted with the demand that killed them, so
        the guaranteed allocation actually covers the observed usage."""
        if job.jid in self._pinned:
            return max(job.mem_request_mb, self._observed_peak.get(job.jid, 0))
        return job.mem_request_mb

    def plan(self, job: Job) -> Optional[JobAllocation]:
        if job.restarts >= self.max_oom_failures:
            self._pinned.add(job.jid)
        return super().plan(job)

    def is_pinned(self, job: Job) -> bool:
        return job.jid in self._pinned

    def on_finish(self, job: Job) -> None:
        self._pinned.discard(job.jid)
        self._observed_peak.pop(job.jid, None)
        self._rank_scale_cache.pop(job.jid, None)

    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["pinned"] = set(self._pinned)
        state["observed_peak"] = dict(self._observed_peak)
        state["rank_scale_cache"] = {
            jid: (None if v is None else v.copy())
            for jid, v in self._rank_scale_cache.items()
        }
        # Generator state dicts are built fresh on access; hold as-is.
        state["monitor_rng"] = self._monitor_rng.bit_generator.state
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._pinned = set(state["pinned"])
        self._observed_peak = dict(state["observed_peak"])
        self._rank_scale_cache = {
            jid: (None if v is None else v.copy())
            for jid, v in state["rank_scale_cache"].items()
        }
        self._monitor_rng.bit_generator.state = state["monitor_rng"]

    # ------------------------------------------------------------------
    def update(self, job: Job, progress: float, window: float) -> UpdateOutcome:
        """One Monitor → Decider → Actuator step for a running job.

        ``progress`` is the job's current work position and ``window`` the
        progress span until the next update; the enforced demand is the
        maximum usage in that span (paper §2.3).  Each phase runs under
        ``self.obs.phase(...)`` so an observed run gets per-phase wall
        times; with telemetry disabled the wrappers are shared no-ops.
        """
        out = UpdateOutcome()
        if job.jid in self._pinned:
            return out
        alloc = self.cluster.allocations.get(job.jid)
        if alloc is None:
            return out
        with self.obs.phase("monitor"):
            reference = self._monitor(job, progress, window)
        with self.obs.phase("decider"):
            deltas = self._decide(job, alloc, reference)
        prov = self.obs.provenance
        if deltas and prov.enabled:
            # Decider verdict, parented on the job's last lifecycle event;
            # the resulting pool/cluster events hang off it causally.
            prov.scope = prov.emit(
                "decide",
                jid=job.jid,
                reference_mb=int(reference),
                n_deltas=len(deltas),
                grow_mb=int(sum(d for _, d in deltas if d > 0)),
                shrink_mb=int(-sum(d for _, d in deltas if d < 0)),
            )
        with self.obs.phase("actuator"):
            self._actuate(job.jid, alloc, deltas, out)
        if not out.oom:
            out.resized = out.freed_mb > 0 or out.grown_mb > 0
        return out

    def _monitor(self, job: Job, progress: float, window: float) -> int:
        """Monitor: the usage reading the Decider will act on."""
        reference = job.usage.max_in(progress, progress + window)
        if self.monitor_noise > 0.0:
            # Noisy telemetry: the Decider sees a perturbed reading, but
            # never below the memory resident right now (the Monitor
            # cannot report less than what is mapped).
            noise = 1.0 + self._monitor_rng.normal(0.0, self.monitor_noise)
            observed = int(round(reference * max(noise, 0.0)))
            reference = max(observed, job.usage.usage_at(progress))
        reference += self.headroom_mb
        prev = self._observed_peak.get(job.jid, 0)
        if reference > prev:
            self._observed_peak[job.jid] = reference
        return reference

    def _rank_scales(self, job: Job, n_ranks: int) -> Optional[np.ndarray]:
        """Rank-scale vector for ``job`` (``None`` = uniform 1.0)."""
        try:
            return self._rank_scale_cache[job.jid]
        except KeyError:
            pass
        if job.node_scale is None:
            scales = None
        else:
            base = np.asarray(job.node_scale, dtype=np.float64)
            scales = base[np.arange(n_ranks) % len(base)]
        self._rank_scale_cache[job.jid] = scales
        return scales

    def _decide(self, job: Job, alloc: JobAllocation,
                reference: int) -> List[Tuple[int, int]]:
        """Decider: per-node (node, delta MB) resize decisions.

        Pure read of the job's own allocation — actuating one node never
        changes another node's ``total_on``, so deciding everything
        up-front is equivalent to the interleaved decide/act loop.

        Vectorised over the columnar store: a job's per-node totals are
        exactly ``local_used_mb + remote_held_mb`` on its (CPU-exclusive)
        nodes, and ``np.rint`` rounds half-to-even like ``round``, so the
        demands are bit-identical to the former per-rank loop.
        """
        nodes = alloc.nodes_array()
        scales = self._rank_scales(job, len(nodes))
        if scales is None:
            demands = np.full(len(nodes), reference, dtype=np.int64)
        else:
            # Per-node demand: the Monitor reports each node separately
            # (paper Fig. 1a); ranks may have imbalanced footprints.
            demands = np.rint(reference * scales).astype(np.int64)
        c = self.cluster
        totals = c.local_used_mb[nodes] + c.remote_held_mb[nodes]
        delta_arr = demands - totals
        (nz,) = np.nonzero(delta_arr)
        return [(int(nodes[i]), int(delta_arr[i])) for i in nz]

    def _actuate(self, jid: int, alloc: JobAllocation,
                 deltas: List[Tuple[int, int]], out: UpdateOutcome) -> None:
        """Actuator: apply the decided resizes, in node order.

        The whole window runs under ``defer_demand`` so the per-mutation
        demand notifications collapse into one flush — the contention
        model reprices after the update returns, so nothing reads lender
        demand mid-window.
        """
        with self.cluster.defer_demand():
            for node, delta in deltas:
                if delta < 0:
                    self._shrink(jid, alloc, node, -delta, out)
                elif not self._grow(jid, alloc, node, delta, out):
                    out.oom = True
                    return

    # ------------------------------------------------------------------
    def _shrink(
        self, jid: int, alloc: JobAllocation, node: int, excess: int, out: UpdateOutcome
    ) -> None:
        """Release ``excess`` MB on ``node``: remote first, then local."""
        c = self.cluster
        remote_map = alloc.remote_mb.get(node)
        if remote_map:
            # Release from the most-loaded lenders first so memory nodes
            # recover their ability to start jobs sooner.
            for lender in sorted(remote_map, key=lambda l: -remote_map[l]):
                if excess <= 0:
                    break
                give = min(remote_map[lender], excess)
                c.remove_remote(jid, node, lender, give, alloc=alloc)
                out.freed_mb += give
                out.touched_nodes.append(lender)
                excess -= give
        if excess > 0:
            local = alloc.local_mb.get(node, 0)
            give = min(local, excess)
            if give > 0:
                c.shrink_local(jid, node, give, alloc=alloc)
                out.freed_mb += give
                out.touched_nodes.append(node)

    def _grow(
        self, jid: int, alloc: JobAllocation, node: int, deficit: int, out: UpdateOutcome
    ) -> bool:
        """Acquire ``deficit`` MB on ``node``: local first, then remote.

        Returns ``False`` when the pool cannot cover the remainder (OOM).
        """
        c = self.cluster
        free_local = int(
            c.capacity_mb[node] - c.local_used_mb[node] - c.lent_mb[node]
        )
        take = min(free_local, deficit)
        if take > 0:
            c.grow_local(jid, node, take, alloc=alloc)
            out.grown_mb += take
            out.touched_nodes.append(node)
            deficit -= take
        if deficit == 0:
            return True
        # Any node but this one may lend — including the job's own nodes.
        plan = self.pool.plan_borrow(deficit, exclude=[node], near=node)
        if plan is None:
            return False
        for lender, mb in plan:
            c.add_remote(jid, node, lender, mb, alloc=alloc)
            out.grown_mb += mb
            out.touched_nodes.append(lender)
        return True
