"""Allocation-policy interface.

A policy answers two questions for the scheduler:

* :meth:`~AllocationPolicy.can_ever_run` — could this job start on an
  *empty* system?  Jobs failing this are marked ``UNRUNNABLE`` (the
  "missing bars" in the paper's figures).
* :meth:`~AllocationPolicy.plan` — can the job start *now*, and with what
  memory layout?  The returned plan is committed by the controller via
  :meth:`repro.cluster.Cluster.apply`.

The dynamic policy additionally implements :meth:`update`, invoked by the
Decider on each monitoring window.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

from ..cluster.allocation import JobAllocation
from ..cluster.cluster import Cluster
from ..cluster.memorypool import MemoryPool
from ..jobs.job import Job
from ..obs.telemetry import NULL_TELEMETRY


@dataclass
class UpdateOutcome:
    """Result of one dynamic-policy update for one job."""

    resized: bool = False
    freed_mb: int = 0
    grown_mb: int = 0
    oom: bool = False
    touched_nodes: List[int] = field(default_factory=list)


class AllocationPolicy(ABC):
    """Base class for the three evaluated policies."""

    #: Short name used in reports/figures.
    name: str = "abstract"
    #: Whether the policy may borrow remote memory.
    uses_disaggregation: bool = False
    #: Whether the policy resizes allocations while jobs run.
    is_dynamic: bool = False
    #: Telemetry sink for Monitor/Decider/Actuator phase timings; the
    #: controller replaces this (per instance) when a run is observed.
    obs = NULL_TELEMETRY

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.pool = MemoryPool(cluster)

    # ------------------------------------------------------------------
    @abstractmethod
    def can_ever_run(self, job: Job) -> bool:
        """Whether the job could start on an empty system."""

    @abstractmethod
    def plan(self, job: Job) -> Optional[JobAllocation]:
        """Plan an allocation for ``job`` right now, or ``None``."""

    # ------------------------------------------------------------------
    def update(self, job: Job, progress: float, window: float) -> UpdateOutcome:
        """Dynamic-policy hook; static policies never resize."""
        return UpdateOutcome()

    def on_finish(self, job: Job) -> None:
        """Hook for per-job policy state cleanup."""

    # ------------------------------------------------------------------
    # What-if snapshot support (see repro.whatif.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Mutable per-run policy state, deep enough to restore from.

        The base policies keep no per-run state beyond the pool (which
        the snapshot machinery captures separately); stateful policies
        override this together with :meth:`restore_state`.
        """
        return {}

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`snapshot_state`, in place."""
