"""Allocation policies: baseline, static disaggregated, dynamic disaggregated."""

from typing import Dict, Type

from ..cluster.cluster import Cluster
from .base import AllocationPolicy, UpdateOutcome
from .baseline import BaselinePolicy
from .dynamic import DynamicDisaggregatedPolicy
from .static import StaticDisaggregatedPolicy

#: Registry keyed by the names used in figures and scenario configs.
POLICIES: Dict[str, Type[AllocationPolicy]] = {
    BaselinePolicy.name: BaselinePolicy,
    StaticDisaggregatedPolicy.name: StaticDisaggregatedPolicy,
    DynamicDisaggregatedPolicy.name: DynamicDisaggregatedPolicy,
}


def make_policy(name: str, cluster: Cluster, **kwargs) -> AllocationPolicy:
    """Instantiate a policy by registry name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; choose from {sorted(POLICIES)}")
    return cls(cluster, **kwargs)


__all__ = [
    "AllocationPolicy",
    "BaselinePolicy",
    "DynamicDisaggregatedPolicy",
    "POLICIES",
    "StaticDisaggregatedPolicy",
    "UpdateOutcome",
    "make_policy",
]
