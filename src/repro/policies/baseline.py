"""Baseline policy: exclusive nodes, no disaggregation (paper §3.5).

A job may only start when its per-node memory request fits entirely in
the local DRAM of each selected node; nodes are CPU- and memory-exclusive
(no lending at all).  Node selection is best-fit by capacity class so that
large-memory nodes are preserved for large-memory jobs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.allocation import JobAllocation
from ..jobs.job import Job
from .base import AllocationPolicy


class BaselinePolicy(AllocationPolicy):
    """No disaggregated memory: the job gets whole nodes or nothing."""

    name = "baseline"
    uses_disaggregation = False
    is_dynamic = False

    def can_ever_run(self, job: Job) -> bool:
        fits = self.cluster.capacity_mb >= job.mem_request_mb
        return int(fits.sum()) >= job.n_nodes

    def plan(self, job: Job) -> Optional[JobAllocation]:
        c = self.cluster
        candidates = (~c.busy) & (c.capacity_mb >= job.mem_request_mb)
        idx = np.flatnonzero(candidates)
        if len(idx) < job.n_nodes:
            return None
        # Best fit: smallest capacity first, stable by index.
        order = np.argsort(c.capacity_mb[idx], kind="stable")
        chosen = idx[order[: job.n_nodes]]
        alloc = JobAllocation(nodes=[int(n) for n in chosen])
        for n in alloc.nodes:
            # Exclusive access: the job owns the node's entire DRAM
            # (Table 4 note: "Baseline allocation also considers exclusive
            # access to the memory").
            alloc.local_mb[n] = int(c.capacity_mb[n])
        return alloc
