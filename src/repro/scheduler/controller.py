"""The Slurm-like controller (``slurmctld`` of Fig. 1).

The controller owns the pending queue and the running set, runs the
FCFS + EASY-backfill scheduling pass on the configured 30 s cadence,
starts and finishes jobs, and drives the dynamic policy's
Monitor → Decider → Actuator → Executor loop on the 5-minute update
cadence.  All resource mutations flow through
:class:`repro.cluster.Cluster`, and every slowdown change re-prices the
affected finish events (jobs advance in work seconds; wall duration is
``remaining_work × slowdown``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Set

from ..cluster.allocation import JobAllocation
from ..cluster.cluster import Cluster
from ..core.config import SystemConfig
from ..core.engine import Engine
from ..core.events import Event, EventKind
from ..jobs.job import Job
from ..jobs.states import JobState
from ..metrics.records import JobRecord, SimulationResult
from ..metrics.utilization import UtilizationTimeline
from ..obs.blame import (
    WAIT_HOL,
    WAIT_LENDER,
    WAIT_LOCAL,
    WAIT_MEMNODE,
)
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from ..policies.base import AllocationPolicy
from ..slowdown.model import ContentionModel
from .backfill import can_backfill, shadow_time
from .eventlog import EventLog, NullEventLog
from . import eventlog as _ev
from .queue import PendingQueue

#: Relative slowdown change below which finish events are not rescheduled.
_REPRICE_EPS = 1e-9

#: Relative tolerance treating a float time as "on" a cadence multiple.
_TICK_EPS = 1e-9


def next_tick(now: float, interval: float) -> float:
    """First cadence multiple at or after ``now``, float-noise tolerant.

    ``now % interval == 0`` misclassifies times like ``300.0000000001``
    (an accumulated-float sched pass lands a hair after the multiple and
    the naive ceil would skip a whole interval).  Times within
    ``_TICK_EPS`` (relative) of a multiple snap to it; the result is
    clamped to never schedule into the past.
    """
    k = math.floor(now / interval + _TICK_EPS)
    t = k * interval
    if t + _TICK_EPS * interval < now:
        t = (k + 1) * interval
    return max(t, now)


class Controller:
    """Central resource manager wired into an :class:`Engine`."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        policy: AllocationPolicy,
        model: ContentionModel,
        config: SystemConfig,
        sample_interval: Optional[float] = None,
        event_log: Optional[EventLog] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.engine = engine
        self.cluster = cluster
        self.policy = policy
        self.model = model
        # Maintain the model's per-lender demand ledger against this
        # cluster (invalidated by the cluster's borrow/resize mutators).
        model.attach(cluster)
        self.config = config
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # The policy reports Monitor/Decider/Actuator phase timings to
        # the same sink (instance attribute shadows the class default).
        policy.obs = self.telemetry
        # Causal provenance + wait-time blame.  Everything below is
        # reached only behind `if prov.enabled:` guards, and the cluster
        # tap / demand listener / pool hook are installed only when
        # enabled, so a disabled run makes zero provenance calls.
        self.prov = self.telemetry.provenance
        self.blame = self.telemetry.blame
        if self.prov.enabled:
            cluster.set_provenance_tap(self._prov_cluster_tap)
            cluster.add_demand_listener(self._prov_demand_dirty)
            pool = getattr(policy, "pool", None)
            if pool is not None:
                pool.provenance = self.prov
        self.pending = PendingQueue()
        self.jobs: Dict[int, Job] = {}
        self.running: Dict[int, Job] = {}
        self.finish_events: Dict[int, Event] = {}
        self.result = SimulationResult(
            policy=policy.name,
            total_nodes=cluster.n_nodes,
            total_capacity_mb=cluster.total_capacity_mb(),
        )
        self.timeline = UtilizationTimeline()
        self.sample_interval = sample_interval
        self.event_log = event_log if event_log is not None else NullEventLog()
        self._last_account = 0.0
        self._sched_scheduled = False
        self._mem_scheduled = False
        self._dirty = False

        #: wall-limit kill events, only when config.enforce_walltime
        self.wall_events: Dict[int, Event] = {}

        engine.on(EventKind.JOB_SUBMIT, self._on_submit)
        engine.on(EventKind.JOB_FINISH, self._on_finish)
        engine.on(EventKind.JOB_KILL, self._on_wall_kill)
        engine.on(EventKind.SCHED_PASS, self._on_sched)
        engine.on(EventKind.MEM_UPDATE, self._on_mem_update)
        engine.on(EventKind.SAMPLE, self._on_sample)
        engine.on(EventKind.TELEMETRY, self._on_telemetry)

    # ------------------------------------------------------------------
    # Workload loading
    # ------------------------------------------------------------------
    def load(self, jobs: Iterable[Job]) -> None:
        """Register jobs and schedule their submission events."""
        for job in jobs:
            if job.jid in self.jobs:
                raise ValueError(f"duplicate job id {job.jid}")
            self.jobs[job.jid] = job
            self.engine.at(job.submit_time, EventKind.JOB_SUBMIT, job)
        if self.sample_interval:
            self.engine.at(0.0, EventKind.SAMPLE, None)
        if self.telemetry.enabled:
            self.engine.at(0.0, EventKind.TELEMETRY, None)

    # ------------------------------------------------------------------
    # Time integrals
    # ------------------------------------------------------------------
    def _account(self, now: float) -> None:
        dt = now - self._last_account
        if dt <= 0:
            return
        self.result.node_busy_seconds += self.cluster.busy_count * dt
        self.result.mem_allocated_mb_seconds += self.cluster.total_allocated_mb() * dt
        # Lent memory == remote memory in use (conservation invariant).
        self.result.mem_remote_mb_seconds += self.cluster.lent_total * dt
        self._last_account = now

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_submit(self, engine: Engine, ev: Event) -> None:
        job: Job = ev.payload
        self._account(engine.now)
        self.telemetry.inc("jobs_submitted")
        self.event_log.log(engine.now, _ev.SUBMIT, job.jid,
                           f"n={job.n_nodes} req={job.mem_request_mb}MB")
        prov = self.prov
        if prov.enabled:
            prov.now = engine.now
            prov.scope = prov.emit(
                "submit", jid=job.jid, parents=(),
                n_nodes=job.n_nodes, mem_request_mb=job.mem_request_mb,
            )
        if not self.policy.can_ever_run(job):
            job.set_state(JobState.UNRUNNABLE)
            self.result.unrunnable.append(job.jid)
            self.telemetry.inc("jobs_unrunnable")
            self.event_log.log(engine.now, _ev.UNRUNNABLE, job.jid)
            if prov.enabled:
                prov.emit("unrunnable", jid=job.jid)
            return
        self.pending.add(job)
        if self.blame is not None:
            self.blame.enqueued(job.jid, engine.now)
        self._dirty = True
        self._request_sched(engine.now)

    def _on_sched(self, engine: Engine, ev: Event) -> None:
        self._sched_scheduled = False
        if not self._dirty or not self.pending:
            return
        self._account(engine.now)
        self.telemetry.inc("sched_passes")
        prov = self.prov
        if prov.enabled:
            prov.now = engine.now
            prov.scope = prov.emit(
                "sched_pass", parents=(), queue_depth=len(self.pending)
            )
        with self.telemetry.span("controller.sched_pass", engine.now):
            self._sched_pass(engine.now)

    def _on_finish(self, engine: Engine, ev: Event) -> None:
        job: Job = ev.payload
        now = engine.now
        self._account(now)
        self._advance(job, now)
        prov = self.prov
        if prov.enabled:
            # Stamp before the release so the cluster tap dates its
            # mutation event correctly and chains under this handler.
            prov.now = now
            prov.scope = None
        alloc = self.cluster.release(job.jid)
        self.running.pop(job.jid, None)
        self.finish_events.pop(job.jid, None)
        self._cancel_wall_event(job)
        job.set_state(JobState.COMPLETED)
        job.finish_time = now
        self.policy.on_finish(job)
        self.telemetry.inc("jobs_finished")
        self.telemetry.observe_time("job_response_s", now - job.submit_time)
        self.event_log.log(now, _ev.FINISH, job.jid,
                           f"runtime={now - (job.start_time or now):.0f}s")
        if prov.enabled:
            prov.scope = prov.emit(
                "finish", jid=job.jid,
                response_s=now - job.submit_time,
                runtime_s=now - (job.start_time or now),
            )
        self.result.records.append(self._record_of(job, now))
        self.result.makespan = max(self.result.makespan, now)
        touched = list(alloc.nodes) + list(alloc.lender_ids())
        self._reprice(self.model.affected_jobs(self.cluster, touched), now)
        self._dirty = True
        self._request_sched(now)

    def _on_mem_update(self, engine: Engine, ev: Event) -> None:
        self._mem_scheduled = False
        now = engine.now
        self._account(now)
        tel = self.telemetry
        tel.inc("mem_update_ticks")
        prov = self.prov
        if prov.enabled:
            prov.now = now
            prov.scope = prov.emit(
                "mem_update", parents=(), running=len(self.running)
            )
        tick_scope = prov.scope
        with tel.span("controller.mem_update", now):
            affected: Set[int] = set()
            freed = False
            # Deterministic iteration order over running jobs.
            for jid in sorted(self.running):
                job = self.running.get(jid)
                if job is None or job.state is not JobState.RUNNING:
                    continue
                if prov.enabled:
                    # The policy scopes its events under its own "decide";
                    # each job's loop turn restarts from the tick root.
                    prov.scope = tick_scope
                self._advance(job, now)
                window = self.config.update_interval / max(job.slowdown, 1.0)
                outcome = self.policy.update(job, job.work_done, window)
                if outcome.oom:
                    affected.update(self._kill(job, now))
                    freed = True
                    continue
                if outcome.resized:
                    tel.inc("resizes")
                    if outcome.freed_mb > 0:
                        tel.inc("resize_freed_mb", outcome.freed_mb)
                        tel.observe_resize(outcome.freed_mb)
                    if outcome.grown_mb > 0:
                        tel.inc("resize_grown_mb", outcome.grown_mb)
                        tel.observe_resize(outcome.grown_mb)
                    self.event_log.log(
                        now, _ev.RESIZE, job.jid,
                        f"freed={outcome.freed_mb}MB grown={outcome.grown_mb}MB",
                    )
                    if prov.enabled:
                        prov.emit(
                            "resize", jid=job.jid,
                            freed_mb=outcome.freed_mb,
                            grown_mb=outcome.grown_mb,
                        )
                if outcome.touched_nodes:
                    affected.update(
                        self.model.affected_jobs(self.cluster, outcome.touched_nodes)
                    )
                if outcome.freed_mb > 0:
                    freed = True
            # Executor: push the decided changes back into the engine by
            # repricing affected finish events (paper Fig. 1a).
            if prov.enabled:
                prov.scope = tick_scope
            with tel.phase("executor"):
                self._reprice(affected, now)
        tel.flush_phases(now, "policy")
        if freed:
            self._dirty = True
            self._request_sched(now)
        if self.running or self.pending:
            self._schedule_mem_update(now)

    def _on_sample(self, engine: Engine, ev: Event) -> None:
        now = engine.now
        cap = self.cluster.total_capacity_mb()
        self.timeline.record(
            now,
            self.cluster.cpu_utilization(),
            self.cluster.total_allocated_mb() / cap if cap else 0.0,
        )
        if self.running or self.pending or self._has_work_pending():
            self.engine.at(now + self.sample_interval, EventKind.SAMPLE, None)

    def _on_telemetry(self, engine: Engine, ev: Event) -> None:
        """Sample the metric gauges on the telemetry cadence."""
        now = engine.now
        self.telemetry.sample_cluster(now, self)
        if self.running or self.pending or self._has_work_pending():
            self.engine.at(
                now + self.telemetry.sample_interval, EventKind.TELEMETRY, None
            )

    def _has_work_pending(self) -> bool:
        """Non-sampler events still queued (future submits, kills, ...).

        The sampler chains must not count *each other* as pending work —
        with both a SAMPLE and a TELEMETRY chain active, each would see
        the other's next event and they would reschedule forever after
        the workload drains.
        """
        return self.engine.queue.has_live_excluding(
            EventKind.SAMPLE, EventKind.TELEMETRY
        )

    # ------------------------------------------------------------------
    # Scheduling pass: FCFS + EASY backfill
    # ------------------------------------------------------------------
    def _sched_pass(self, now: float) -> None:
        self._dirty = False
        consider = self.pending.head(self.config.queue_depth)
        blocked: Optional[Job] = None
        shadow = float("inf")
        backfill_seen = 0
        # Blame-enabled passes classify every planning failure; the
        # disabled path keeps the bare `_try_plan` hot loop.
        reasons: Optional[Dict[int, str]] = (
            {} if self.blame is not None else None
        )
        for job in consider:
            if job.state is not JobState.PENDING:
                continue
            if blocked is None:
                alloc = self._plan_for(job, reasons)
                if alloc is not None:
                    self._start(job, alloc, now)
                    continue
                if self.config.scheduling == "fcfs":
                    # Strict FCFS ablation: nothing may overtake the
                    # blocked head-of-queue job.
                    break
                blocked = job
                with self.telemetry.span("controller.backfill_shadow", now,
                                         jid=job.jid):
                    shadow = shadow_time(
                        job,
                        self.cluster,
                        self.running.values(),
                        now,
                        self.policy.uses_disaggregation,
                    )
                if self.prov.enabled:
                    self.prov.emit(
                        "backfill_shadow", jid=job.jid,
                        shadow_t=shadow if math.isfinite(shadow) else None,
                    )
                continue
            backfill_seen += 1
            if backfill_seen > self.config.backfill_depth:
                break
            if not can_backfill(job, now, shadow):
                continue
            alloc = self._plan_for(job, reasons)
            if alloc is not None:
                self._start(job, alloc, now)
                self.telemetry.inc("backfill_starts")
        if reasons is not None:
            self._attribute_wait(now, reasons)

    def _try_plan(self, job: Job) -> Optional[JobAllocation]:
        """Cheap feasibility pre-checks, then the policy's planner."""
        c = self.cluster
        if self.policy.uses_disaggregation:
            if c.startable_count < job.n_nodes:
                return None
            if job.n_nodes * job.mem_request_mb > c.free_local_total:
                return None
        else:
            if c.fitting_idle_count(job.mem_request_mb) < job.n_nodes:
                return None
        return self.policy.plan(job)

    def _plan_for(
        self, job: Job, reasons: Optional[Dict[int, str]]
    ) -> Optional[JobAllocation]:
        if reasons is None:
            return self._try_plan(job)
        return self._plan_or_reason(job, reasons)

    def _plan_or_reason(
        self, job: Job, reasons: Dict[int, str]
    ) -> Optional[JobAllocation]:
        """:meth:`_try_plan` plus a wait-blame class on failure.

        Mirrors the pre-checks exactly, mapping each to its cause:
        startable/idle shortfalls split into head-of-line blocking vs
        the memory-node rule, the local-DRAM totals check is a local
        shortfall, and a planner failure past the pre-checks means the
        pool could not assemble the lender set (disaggregated) or no
        fitting node combination existed (baseline).
        """
        c = self.cluster
        if self.policy.uses_disaggregation:
            if c.startable_count < job.n_nodes:
                reasons[job.jid] = (
                    WAIT_MEMNODE if c.n_idle() >= job.n_nodes else WAIT_HOL
                )
                return None
            if job.n_nodes * job.mem_request_mb > c.free_local_total:
                reasons[job.jid] = WAIT_LOCAL
                return None
        else:
            if c.fitting_idle_count(job.mem_request_mb) < job.n_nodes:
                reasons[job.jid] = (
                    WAIT_LOCAL if c.n_idle() >= job.n_nodes else WAIT_HOL
                )
                return None
        alloc = self.policy.plan(job)
        if alloc is None:
            reasons[job.jid] = (
                WAIT_LENDER if self.policy.uses_disaggregation else WAIT_LOCAL
            )
        return alloc

    def _attribute_wait(self, now: float, reasons: Dict[int, str]) -> None:
        """Charge each still-pending job's interval since the last pass.

        Jobs the pass examined get their classified reason; the rest
        (behind the queue-depth window or ineligible to backfill) are
        head-of-line blocked by definition.  A ``wait_blame`` provenance
        event marks each *transition* of a job's blamed cause.
        """
        blame = self.blame
        prov = self.prov
        for job in self.pending:
            if job.state is not JobState.PENDING:
                continue
            reason = reasons.get(job.jid, WAIT_HOL)
            changed = blame.attribute(job.jid, now, reason)
            if changed and prov.enabled:
                prov.emit("wait_blame", jid=job.jid, reason=reason)

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def _start(self, job: Job, alloc: JobAllocation, now: float) -> None:
        self.pending.remove(job)
        if self.blame is not None:
            # Close the wait episode: the residual interval since the
            # last sched pass goes to the job's last classified reason.
            self.blame.started(job.jid, now)
        self.cluster.apply(job.jid, alloc)
        job.set_state(JobState.RUNNING)
        job.start_time = now
        if job.first_start_time is None:
            job.first_start_time = now
        job.last_progress_time = now
        self.running[job.jid] = job
        job.slowdown = self.model.slowdown(job, self.cluster, self.jobs)
        self.telemetry.inc("jobs_started")
        self.telemetry.observe_time("job_wait_s", now - job.submit_time)
        self.event_log.log(
            now, _ev.START, job.jid,
            f"nodes={alloc.nodes[:4]}{'...' if len(alloc.nodes) > 4 else ''} "
            f"local={alloc.total_local()}MB remote={alloc.total_remote()}MB "
            f"slowdown={job.slowdown:.3f}",
        )
        prov = self.prov
        if prov.enabled:
            start_eid = prov.emit(
                "start", jid=job.jid,
                nodes=len(alloc.nodes),
                local_mb=alloc.total_local(),
                remote_mb=alloc.total_remote(),
                slowdown=job.slowdown,
                wait_s=now - job.submit_time,
            )
            bd = self.model.slowdown_breakdown(job, self.cluster, self.jobs)
            if bd is not None and bd["rf"] > 0.0:
                prov.emit("slowdown", jid=job.jid, parents=(start_eid,), **bd)
        self._schedule_finish(job, now)
        if self.config.enforce_walltime:
            self.wall_events[job.jid] = self.engine.at(
                now + job.walltime_limit, EventKind.JOB_KILL, job
            )
        # New borrowings may add contention on shared lenders.
        touched = list(alloc.lender_ids())
        if touched:
            others = self.model.affected_jobs(self.cluster, touched)
            others.discard(job.jid)
            self._reprice(others, now)
        if self.policy.is_dynamic:
            self._schedule_mem_update(now)

    def _on_wall_kill(self, engine: Engine, ev: Event) -> None:
        """Wall-limit enforcement: terminate the job (TIMEOUT, terminal)."""
        job: Job = ev.payload
        if job.state is not JobState.RUNNING:
            return  # stale event (job finished in the same tick)
        now = engine.now
        self._account(now)
        self._advance(job, now)
        prov = self.prov
        if prov.enabled:
            prov.now = now
            prov.scope = None
        alloc = self.cluster.release(job.jid)
        self.running.pop(job.jid, None)
        fev = self.finish_events.pop(job.jid, None)
        if fev is not None:
            self.engine.cancel(fev)
        self.wall_events.pop(job.jid, None)
        job.set_state(JobState.TIMEOUT)
        self.telemetry.inc("timeouts")
        self.event_log.log(now, _ev.TIMEOUT, job.jid,
                           f"limit={job.walltime_limit:.0f}s")
        if prov.enabled:
            prov.scope = prov.emit(
                "timeout", jid=job.jid, limit_s=job.walltime_limit
            )
        job.finish_time = now
        self.policy.on_finish(job)
        self.result.timeouts += 1
        self.result.records.append(self._record_of(job, now))
        self.result.makespan = max(self.result.makespan, now)
        touched = list(alloc.nodes) + list(alloc.lender_ids())
        self._reprice(self.model.affected_jobs(self.cluster, touched), now)
        self._dirty = True
        self._request_sched(now)

    def _cancel_wall_event(self, job: Job) -> None:
        ev = self.wall_events.pop(job.jid, None)
        if ev is not None:
            self.engine.cancel(ev)

    def _kill(self, job: Job, now: float) -> Set[int]:
        """OOM kill: release, requeue (F/R or C/R).  Returns affected jids."""
        alloc = self.cluster.release(job.jid)
        self.running.pop(job.jid, None)
        self._cancel_wall_event(job)
        ev = self.finish_events.pop(job.jid, None)
        if ev is not None:
            self.engine.cancel(ev)
        job.set_state(JobState.KILLED)
        self.telemetry.inc("oom_kills")
        self.event_log.log(now, _ev.OOM_KILL, job.jid,
                           f"restarts={job.restarts + 1}")
        prov = self.prov
        if prov.enabled:
            prov.emit("oom_kill", jid=job.jid, restarts=job.restarts + 1)
        self.result.oom_kills += 1
        keep = getattr(self.policy, "checkpoint_restart", False)
        boost = getattr(self.policy, "oom_priority_boost", False)
        quantum = getattr(self.policy, "checkpoint_interval", None)
        job.reset_for_restart(now, keep_checkpoint=keep, keep_priority=boost,
                              checkpoint_quantum=quantum)
        self.pending.add(job)
        if self.blame is not None:
            # A requeued job opens a fresh wait episode; its components
            # keep accumulating into the same per-job buckets.
            self.blame.enqueued(job.jid, now)
        touched = list(alloc.nodes) + list(alloc.lender_ids())
        return self.model.affected_jobs(self.cluster, touched)

    # ------------------------------------------------------------------
    # Progress and repricing
    # ------------------------------------------------------------------
    def _advance(self, job: Job, now: float) -> None:
        dt = now - job.last_progress_time
        if dt > 0:
            job.work_done = min(
                job.work_done + dt / max(job.slowdown, 1.0), job.base_runtime
            )
            job.last_progress_time = now

    def _schedule_finish(self, job: Job, now: float) -> None:
        old = self.finish_events.get(job.jid)
        if old is not None:
            self.engine.cancel(old)
        wall = job.remaining_work * max(job.slowdown, 1.0)
        self.finish_events[job.jid] = self.engine.at(
            now + wall, EventKind.JOB_FINISH, job
        )

    def _reprice(self, jids: Iterable[int], now: float) -> None:
        cache: Dict[int, float] = {}
        prov = self.prov
        for jid in sorted(set(jids)):
            job = self.running.get(jid)
            if job is None or job.state is not JobState.RUNNING:
                continue
            self._advance(job, now)
            new_s = self.model.slowdown(job, self.cluster, self.jobs, cache)
            if abs(new_s - job.slowdown) > _REPRICE_EPS:
                if prov.enabled:
                    data = {"old": job.slowdown, "new": new_s}
                    bd = self.model.slowdown_breakdown(
                        job, self.cluster, self.jobs
                    )
                    if bd is not None:
                        data["lenders"] = bd["lenders"]
                        data["contention"] = bd["contention"]
                        data["base_remote"] = bd["base_remote"]
                    prov.emit("slowdown", jid=jid, **data)
                job.slowdown = new_s
                self._schedule_finish(job, now)

    # ------------------------------------------------------------------
    # Provenance taps (installed only when provenance is enabled)
    # ------------------------------------------------------------------
    def _prov_cluster_tap(self, kind: str, jid: int, alloc) -> None:
        """Cluster mutator delta (whole-allocation apply/release)."""
        self.prov.emit(
            "cluster." + kind, jid=jid,
            nodes=len(alloc.nodes),
            local_mb=alloc.total_local(),
            remote_mb=alloc.total_remote(),
        )

    def _prov_demand_dirty(self, cluster, lenders) -> None:
        """PR 5 listener pub/sub: lender demand ledgers went dirty."""
        self.prov.emit(
            "demand_dirty", lenders=[int(lender) for lender in lenders]
        )

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _request_sched(self, now: float) -> None:
        if self._sched_scheduled:
            return
        self.engine.at(next_tick(now, self.config.sched_interval),
                       EventKind.SCHED_PASS, None)
        self._sched_scheduled = True

    def _schedule_mem_update(self, now: float) -> None:
        if self._mem_scheduled or not self.policy.is_dynamic:
            return
        self.engine.at(now + self.config.update_interval, EventKind.MEM_UPDATE, None)
        self._mem_scheduled = True

    # ------------------------------------------------------------------
    def _record_of(self, job: Job, now: float) -> JobRecord:
        start = job.start_time if job.start_time is not None else now
        return JobRecord(
            jid=job.jid,
            n_nodes=job.n_nodes,
            submit_time=job.submit_time,
            start_time=job.first_start_time,
            finish_time=now,
            base_runtime=job.base_runtime,
            actual_runtime=now - start,
            mem_request_mb=job.mem_request_mb,
            peak_usage_mb=job.peak_usage_mb,
            restarts=job.restarts,
            state=job.state,
            user=job.user,
        )

    # ------------------------------------------------------------------
    def finalize(self) -> SimulationResult:
        """Close the books after the engine drains."""
        self._account(self.engine.now)
        submits = [j.submit_time for j in self.jobs.values()]
        self.result.first_submit = min(submits) if submits else 0.0
        self.result.events_processed = self.engine.events_processed
        self.result.meta.setdefault("timeline", self.timeline)
        return self.result
