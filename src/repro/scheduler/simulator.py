"""Top-level simulation entry point.

:func:`simulate` wires a workload, a system configuration and a policy
into the event engine and runs the trace to completion — the Python
equivalent of one Slurm-simulator run (paper Fig. 1b).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..cluster.cluster import Cluster
from ..core.config import SystemConfig
from ..core.engine import Engine
from ..core.errors import SimulationError
from ..jobs.job import Job
from ..metrics.records import SimulationResult
from ..obs.profiling import perf_section
from ..obs.telemetry import Telemetry
from ..policies import make_policy
from ..policies.base import AllocationPolicy
from ..slowdown.model import ContentionModel
from ..slowdown.profiles import AppProfile, profile_pool
from .controller import Controller
from .eventlog import EventLog


def simulate(
    jobs: Iterable[Job],
    config: SystemConfig,
    policy: Union[str, AllocationPolicy] = "dynamic",
    profiles: Optional[Sequence[AppProfile]] = None,
    model: Optional[ContentionModel] = None,
    sample_interval: Optional[float] = None,
    log_events: bool = False,
    max_events: int = 50_000_000,
    telemetry: Optional[Telemetry] = None,
    **policy_kwargs,
) -> SimulationResult:
    """Run one scheduling simulation and return its metrics.

    Parameters
    ----------
    jobs:
        The workload (fresh :class:`~repro.jobs.Job` objects; they are
        mutated during the run, so pass a newly generated trace or use
        :meth:`repro.traces.Workload.fresh_jobs`).
    config:
        System description (node counts, memory classes, intervals).
    policy:
        ``"baseline"``, ``"static"``, ``"dynamic"``, or a ready-made
        policy instance bound to a cluster of your own making.
    profiles / model:
        Slowdown-model inputs; defaults to the built-in profile pool.
    sample_interval:
        If set, record a utilisation timeline sample every so many
        simulated seconds.
    log_events:
        Record a structured event log (``result.meta["event_log"]``) of
        submits, starts, finishes, resizes, and kills.
    telemetry:
        A :class:`repro.obs.Telemetry` instance to observe the run —
        metric counters/gauges sampled on its simulated-time cadence,
        control-loop spans, and (unless ``log_events`` already asked for
        an unbounded log) a ring-buffered event log attached to
        ``telemetry.event_log``.  When the telemetry carries provenance
        (the default), the run also records the causal event graph and
        per-job wait blame (``result.meta["blame"]``, ``repro explain``).
        ``None`` (default) keeps every hook a no-op.
    """
    engine = Engine()
    if isinstance(policy, str):
        cluster = Cluster(config)
        pol = make_policy(policy, cluster, **policy_kwargs)
    else:
        # A ready-made policy brings its own cluster; it must match config.
        pol = policy
        cluster = pol.cluster
        if cluster.config != config:
            raise SimulationError(
                "policy instance's cluster config differs from the config "
                "passed to simulate()"
            )
    if model is None:
        model = ContentionModel(
            profiles if profiles is not None else profile_pool(),
            node_bw_gbps=config.node_bw_gbps,
        )
    observed = telemetry is not None and telemetry.enabled
    if log_events:
        event_log = EventLog()
    elif observed:
        # Telemetry wants the event log for `repro trace`, but bounded:
        # long campaigns must not grow without limit.
        event_log = EventLog(max_entries=telemetry.max_log_entries)
    else:
        event_log = None
    controller = Controller(
        engine, cluster, pol, model, config,
        sample_interval=sample_interval, event_log=event_log,
        telemetry=telemetry,
    )
    controller.load(jobs)
    with perf_section("simulate.engine_run"):
        engine.run(max_events=max_events)
    if controller.running or controller.pending:
        raise SimulationError(
            f"simulation drained with {len(controller.running)} running and "
            f"{len(controller.pending)} pending jobs (scheduling livelock?)"
        )
    cluster.check_invariants()
    result = controller.finalize()
    result.meta["config"] = config
    if event_log is not None:
        result.meta["event_log"] = event_log
    if observed:
        telemetry.event_log = event_log
        telemetry.meta.setdefault("policy", pol.name)
        telemetry.meta.setdefault("n_nodes", cluster.n_nodes)
        telemetry.meta.setdefault(
            "total_capacity_mb", cluster.total_capacity_mb()
        )
        telemetry.finish(result)
        if telemetry.blame is not None:
            # Blame decomposition in the result too, so callers (and the
            # property tests) need not round-trip through export().
            result.meta["blame"] = telemetry.blame.to_dict()
    return result
