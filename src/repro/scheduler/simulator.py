"""Top-level simulation entry point.

:func:`simulate` wires a workload, a system configuration and a policy
into the event engine and runs the trace to completion — the Python
equivalent of one Slurm-simulator run (paper Fig. 1b).

:func:`build_simulation` is the two-phase variant behind the what-if
engine (:mod:`repro.whatif`): it performs all the wiring and workload
loading but does not run the engine, returning a
:class:`SimulationHandle` whose :meth:`~SimulationHandle.run_until` /
:meth:`~SimulationHandle.finish` split lets a caller pause the
simulation at an arbitrary time, snapshot it, and resume (or replay a
perturbed suffix).  ``simulate`` is exactly ``build_simulation`` +
``finish``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from ..cluster.cluster import Cluster
from ..core.config import SystemConfig
from ..core.engine import Engine
from ..core.errors import SimulationError
from ..jobs.job import Job
from ..metrics.records import SimulationResult
from ..obs.profiling import perf_section
from ..obs.telemetry import Telemetry
from ..policies import make_policy
from ..policies.base import AllocationPolicy
from ..slowdown.model import ContentionModel
from ..slowdown.profiles import AppProfile, profile_pool
from .controller import Controller
from .eventlog import EventLog


@dataclass
class SimulationHandle:
    """A wired, loaded, not-yet-finished simulation.

    Produced by :func:`build_simulation`.  The handle owns no state of
    its own — it is a named bundle of the engine/controller object graph
    plus the run-completion logic that :func:`simulate` used to inline.
    """

    engine: Engine
    cluster: Cluster
    policy: AllocationPolicy
    model: ContentionModel
    config: SystemConfig
    controller: Controller
    telemetry: Optional[Telemetry]
    event_log: Optional[EventLog]
    max_events: int

    @property
    def observed(self) -> bool:
        return self.telemetry is not None and self.telemetry.enabled

    def run_until(self, until: float, inclusive: bool = True) -> float:
        """Advance the simulation to time ``until``.

        Events stamped exactly ``until`` are processed unless
        ``inclusive=False`` (the fork boundary: the what-if engine
        leaves them for the replayed suffix).  The clock is left at
        ``until`` (or earlier if the queue drained).  Returns the
        engine clock.
        """
        return self.engine.run(
            until=until, max_events=self.max_events, inclusive=inclusive
        )

    def finish(self) -> SimulationResult:
        """Drain the engine and close the books.

        Replicates the tail of :func:`simulate` exactly (livelock check,
        invariant check, finalize, meta stamping, telemetry finish) so a
        paused-and-resumed run produces a byte-identical result to a
        straight ``simulate`` call.  May be called again after a
        what-if rollback re-ran the suffix.
        """
        with perf_section("simulate.engine_run"):
            self.engine.run(max_events=self.max_events)
        controller = self.controller
        if controller.running or controller.pending:
            raise SimulationError(
                f"simulation drained with {len(controller.running)} running "
                f"and {len(controller.pending)} pending jobs "
                "(scheduling livelock?)"
            )
        self.cluster.check_invariants()
        result = controller.finalize()
        result.meta["config"] = self.config
        if self.event_log is not None:
            result.meta["event_log"] = self.event_log
        if self.observed:
            telemetry = self.telemetry
            telemetry.event_log = self.event_log
            # controller.policy (not a captured local): a what-if policy
            # swap must stamp the policy that actually ran the suffix.
            telemetry.meta.setdefault("policy", controller.policy.name)
            telemetry.meta.setdefault("n_nodes", self.cluster.n_nodes)
            telemetry.meta.setdefault(
                "total_capacity_mb", self.cluster.total_capacity_mb()
            )
            telemetry.finish(result)
            if telemetry.blame is not None:
                # Blame decomposition in the result too, so callers (and
                # the property tests) need not round-trip via export().
                result.meta["blame"] = telemetry.blame.to_dict()
        return result


def build_simulation(
    jobs: Iterable[Job],
    config: SystemConfig,
    policy: Union[str, AllocationPolicy] = "dynamic",
    profiles: Optional[Sequence[AppProfile]] = None,
    model: Optional[ContentionModel] = None,
    sample_interval: Optional[float] = None,
    log_events: bool = False,
    max_events: int = 50_000_000,
    telemetry: Optional[Telemetry] = None,
    **policy_kwargs,
) -> SimulationHandle:
    """Wire one simulation and load its workload without running it.

    Same parameters as :func:`simulate`.  ``max_events`` bounds each
    subsequent engine run (``run_until``/``finish``) rather than the
    whole lifetime.
    """
    engine = Engine()
    if isinstance(policy, str):
        cluster = Cluster(config)
        pol = make_policy(policy, cluster, **policy_kwargs)
    else:
        # A ready-made policy brings its own cluster; it must match config.
        pol = policy
        cluster = pol.cluster
        if cluster.config != config:
            raise SimulationError(
                "policy instance's cluster config differs from the config "
                "passed to simulate()"
            )
    if model is None:
        model = ContentionModel(
            profiles if profiles is not None else profile_pool(),
            node_bw_gbps=config.node_bw_gbps,
        )
    observed = telemetry is not None and telemetry.enabled
    if log_events:
        event_log = EventLog()
    elif observed:
        # Telemetry wants the event log for `repro trace`, but bounded:
        # long campaigns must not grow without limit.
        event_log = EventLog(max_entries=telemetry.max_log_entries)
    else:
        event_log = None
    controller = Controller(
        engine, cluster, pol, model, config,
        sample_interval=sample_interval, event_log=event_log,
        telemetry=telemetry,
    )
    controller.load(jobs)
    return SimulationHandle(
        engine=engine,
        cluster=cluster,
        policy=pol,
        model=model,
        config=config,
        controller=controller,
        telemetry=telemetry,
        event_log=event_log,
        max_events=max_events,
    )


def simulate(
    jobs: Iterable[Job],
    config: SystemConfig,
    policy: Union[str, AllocationPolicy] = "dynamic",
    profiles: Optional[Sequence[AppProfile]] = None,
    model: Optional[ContentionModel] = None,
    sample_interval: Optional[float] = None,
    log_events: bool = False,
    max_events: int = 50_000_000,
    telemetry: Optional[Telemetry] = None,
    **policy_kwargs,
) -> SimulationResult:
    """Run one scheduling simulation and return its metrics.

    Parameters
    ----------
    jobs:
        The workload (fresh :class:`~repro.jobs.Job` objects; they are
        mutated during the run, so pass a newly generated trace or use
        :meth:`repro.traces.Workload.fresh_jobs`).
    config:
        System description (node counts, memory classes, intervals).
    policy:
        ``"baseline"``, ``"static"``, ``"dynamic"``, or a ready-made
        policy instance bound to a cluster of your own making.
    profiles / model:
        Slowdown-model inputs; defaults to the built-in profile pool.
    sample_interval:
        If set, record a utilisation timeline sample every so many
        simulated seconds.
    log_events:
        Record a structured event log (``result.meta["event_log"]``) of
        submits, starts, finishes, resizes, and kills.
    telemetry:
        A :class:`repro.obs.Telemetry` instance to observe the run —
        metric counters/gauges sampled on its simulated-time cadence,
        control-loop spans, and (unless ``log_events`` already asked for
        an unbounded log) a ring-buffered event log attached to
        ``telemetry.event_log``.  When the telemetry carries provenance
        (the default), the run also records the causal event graph and
        per-job wait blame (``result.meta["blame"]``, ``repro explain``).
        ``None`` (default) keeps every hook a no-op.
    """
    handle = build_simulation(
        jobs, config, policy=policy, profiles=profiles, model=model,
        sample_interval=sample_interval, log_events=log_events,
        max_events=max_events, telemetry=telemetry, **policy_kwargs,
    )
    return handle.finish()
