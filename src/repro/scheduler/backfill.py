"""EASY-backfill reservation estimation.

When the head-of-queue job cannot start, EASY backfill grants it a
*reservation*: the earliest time at which, given the expected completion
of the currently running jobs, enough resources will be free.  Later
queue entries may start out of order only if their wall-time limit ends
before that *shadow time*, so the reservation is never delayed.

The shadow-time estimate accounts for node counts, node capacity classes
(for the baseline policy) and total pool memory (for the disaggregated
policies).  It deliberately ignores second-order effects — lending
fragmentation and the memory-node rule — because the running system
re-evaluates feasibility at actual start time anyway; Slurm's own
backfill planner makes equivalent approximations.
"""

from __future__ import annotations

from typing import Iterable

from ..cluster.cluster import Cluster
from ..jobs.job import Job
from ..obs.profiling import perf_section


def expected_finish(job: Job, now: float) -> float:
    """Expected completion used for reservations: start + wall limit.

    Jobs already past their limit (slowdown makes real runtimes exceed
    user estimates) are assumed to finish imminently.
    """
    if job.start_time is None:
        return now
    return max(job.start_time + job.walltime_limit, now)


def shadow_time(
    blocked: Job,
    cluster: Cluster,
    running: Iterable[Job],
    now: float,
    disaggregated: bool,
) -> float:
    """Earliest time ``blocked`` is expected to be startable.

    Walks running jobs in expected-finish order, returning resources to a
    virtual free pool until the blocked job fits.  Returns ``inf`` when
    even draining every running job would not suffice (the scheduler then
    treats the job as waiting for other state changes, e.g. dynamic-policy
    shrinkage).
    """
    with perf_section("backfill.shadow_time"):
        c = cluster
        free_nodes = c.n_idle()
        free_mem = c.free_local_total
        # Idle nodes whose capacity class fits, for the baseline policy
        # (O(1) from the cluster's per-class idle tallies).
        fitting_idle = c.fitting_idle_count(blocked.mem_request_mb)

        def feasible(nodes: int, mem: int, fitting: int) -> bool:
            if disaggregated:
                if nodes < blocked.n_nodes:
                    return False
                return mem >= blocked.n_nodes * blocked.mem_request_mb
            return fitting >= blocked.n_nodes

        if feasible(free_nodes, free_mem, fitting_idle):
            return now

        order = sorted(running, key=lambda j: (expected_finish(j, now), j.jid))
        nodes, mem, fitting = free_nodes, free_mem, fitting_idle
        for job in order:
            alloc = c.allocations.get(job.jid)
            if alloc is None:
                continue
            nodes += len(alloc.nodes)
            mem += alloc.total()
            if not disaggregated:
                fitting += int(
                    (c.capacity_mb[alloc.nodes_array()]
                     >= blocked.mem_request_mb).sum()
                )
            if feasible(nodes, mem, fitting):
                return expected_finish(job, now)
        return float("inf")


def can_backfill(candidate: Job, now: float, shadow: float) -> bool:
    """EASY condition: the candidate must end before the reservation."""
    return now + candidate.walltime_limit <= shadow
