"""Structured simulation event log.

When enabled (``simulate(..., log_events=True)``) the controller records
every job-lifecycle event and allocation resize.  The log supports
filtering and text rendering, and is the basis for schedule debugging
("why did job 17 wait 3 hours?") without stepping through the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class LogEntry:
    """One logged event."""

    time: float
    event: str
    jid: Optional[int] = None
    detail: str = ""

    def render(self) -> str:
        jid = f"job {self.jid}" if self.jid is not None else "-"
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.time:12.1f}s] {self.event:<10} {jid}{detail}"


#: Event names emitted by the controller.
SUBMIT = "submit"
START = "start"
FINISH = "finish"
OOM_KILL = "oom-kill"
TIMEOUT = "timeout"
RESIZE = "resize"
UNRUNNABLE = "unrunnable"


@dataclass
class EventLog:
    """Append-only, time-ordered event log."""

    entries: List[LogEntry] = field(default_factory=list)
    enabled: bool = True

    def log(self, time: float, event: str, jid: Optional[int] = None,
            detail: str = "") -> None:
        if not self.enabled:
            return
        self.entries.append(LogEntry(time, event, jid, detail))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries)

    def for_job(self, jid: int) -> List[LogEntry]:
        """All events of one job, in order."""
        return [e for e in self.entries if e.jid == jid]

    def of_kind(self, event: str) -> List[LogEntry]:
        return [e for e in self.entries if e.event == event]

    def render(self, limit: Optional[int] = None) -> str:
        entries = self.entries if limit is None else self.entries[:limit]
        lines = [e.render() for e in entries]
        if limit is not None and len(self.entries) > limit:
            lines.append(f"... ({len(self.entries) - limit} more)")
        return "\n".join(lines)


class NullEventLog(EventLog):
    """Default: logging disabled, zero overhead on the hot path."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def log(self, time, event, jid=None, detail="") -> None:
        pass
