"""Structured simulation event log.

When enabled (``simulate(..., log_events=True)``) the controller records
every job-lifecycle event and allocation resize.  The log supports
filtering and text rendering, and is the basis for schedule debugging
("why did job 17 wait 3 hours?") without stepping through the engine.

The default log is unbounded — complete history, memory proportional to
the number of events, right for single runs you intend to inspect.  With
``max_entries`` set it becomes a ring buffer keeping only the *newest*
entries (``dropped`` counts the evicted ones): bounded memory for long
campaigns, at the cost of losing the oldest history — ``for_job`` on an
early job may then come back partial or empty.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class LogEntry:
    """One logged event."""

    time: float
    event: str
    jid: Optional[int] = None
    detail: str = ""

    def render(self) -> str:
        jid = f"job {self.jid}" if self.jid is not None else "-"
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.time:12.1f}s] {self.event:<10} {jid}{detail}"


#: Event names emitted by the controller.
SUBMIT = "submit"
START = "start"
FINISH = "finish"
OOM_KILL = "oom-kill"
TIMEOUT = "timeout"
RESIZE = "resize"
UNRUNNABLE = "unrunnable"


@dataclass
class EventLog:
    """Append-only, time-ordered event log.

    ``max_entries=None`` (the default) keeps everything; a positive
    ``max_entries`` turns the log into a ring buffer that evicts the
    oldest entry on overflow and counts evictions in ``dropped``.
    """

    entries: List[LogEntry] = field(default_factory=list)
    enabled: bool = True
    max_entries: Optional[int] = None
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.max_entries is not None:
            if self.max_entries <= 0:
                raise ValueError(
                    f"max_entries must be positive or None, got {self.max_entries}"
                )
            self.entries = deque(self.entries, maxlen=self.max_entries)

    def log(self, time: float, event: str, jid: Optional[int] = None,
            detail: str = "") -> None:
        if not self.enabled:
            return
        if self.max_entries is not None and len(self.entries) == self.max_entries:
            self.dropped += 1  # deque evicts the oldest on append
        self.entries.append(LogEntry(time, event, jid, detail))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries)

    def for_job(self, jid: int) -> List[LogEntry]:
        """All events of one job, in order (ring mode: surviving ones)."""
        return [e for e in self.entries if e.jid == jid]

    def of_kind(self, event: str) -> List[LogEntry]:
        return [e for e in self.entries if e.event == event]

    def render(self, limit: Optional[int] = None) -> str:
        entries = list(islice(self.entries, limit)) if limit is not None \
            else list(self.entries)
        lines = [e.render() for e in entries]
        if limit is not None and len(self.entries) > limit:
            lines.append(f"... ({len(self.entries) - limit} more)")
        if self.dropped:
            lines.append(f"... ({self.dropped} older entries dropped)")
        return "\n".join(lines)


class NullEventLog(EventLog):
    """Default: logging disabled, zero overhead on the hot path."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def log(self, time, event, jid=None, detail="") -> None:
        pass
