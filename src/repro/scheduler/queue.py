"""FCFS pending queue with bounded scheduler consideration depth.

Slurm considers a configurable prefix of the priority-ordered queue on
each scheduling pass (Table 4 sets queue and backfill size to 100).  Jobs
are ordered by the submission time of their *current attempt* (so an
OOM-restarted job re-queues at the tail) with the job id as tie-breaker.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..jobs.job import Job


class PendingQueue:
    """Priority-ordered (FCFS) queue of pending jobs."""

    def __init__(self) -> None:
        self._jobs: List[Job] = []
        self._dirty = False

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def add(self, job: Job) -> None:
        self._jobs.append(job)
        self._dirty = True

    def remove(self, job: Job) -> None:
        self._jobs.remove(job)

    def _sorted(self) -> List[Job]:
        if self._dirty:
            self._jobs.sort(key=lambda j: (j.queue_time, j.jid))
            self._dirty = False
        return self._jobs

    def head(self, depth: int) -> List[Job]:
        """The first ``depth`` jobs in priority order (a copy)."""
        return list(self._sorted()[:depth])

    def __iter__(self) -> Iterator[Job]:
        return iter(self._sorted())

    def peek(self) -> Optional[Job]:
        s = self._sorted()
        return s[0] if s else None

    def min_nodes(self) -> int:
        """Smallest node request among pending jobs (scheduling pre-check)."""
        if not self._jobs:
            return 0
        return min(j.n_nodes for j in self._jobs)
