"""Slurm-like scheduling: queue, EASY backfill, controller, simulator."""

from .backfill import can_backfill, expected_finish, shadow_time
from .controller import Controller
from .queue import PendingQueue
from .simulator import simulate

__all__ = [
    "Controller",
    "PendingQueue",
    "can_backfill",
    "expected_finish",
    "shadow_time",
    "simulate",
]
