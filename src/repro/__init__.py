"""repro — Dynamic Memory Provisioning on Disaggregated HPC Systems.

A from-scratch Python reproduction of Zacarias, Carpenter & Petrucci
(SC-W 2023): a trace-driven discrete-event simulator of a Slurm-managed
HPC cluster with disaggregated memory, three allocation policies
(baseline / static / dynamic), the public-trace-based workload
generation methodology, and the full evaluation harness (Figs. 2, 4–9,
Tables 1–3).

Quickstart
----------
>>> from repro import SystemConfig, simulate, synthetic_workload
>>> wl = synthetic_workload(n_jobs=200, frac_large=0.5,
...                         overestimation=0.6, n_system_nodes=128, seed=1)
>>> cfg = SystemConfig.from_memory_level(50, n_nodes=128)
>>> static = simulate(wl.fresh_jobs(), cfg, policy="static")
>>> dynamic = simulate(wl.fresh_jobs(), cfg, policy="dynamic")
"""

from .cluster import Cluster, JobAllocation, MemoryPool, Node, Torus
from .core import (
    Engine,
    EventKind,
    LARGE_NODE_FRACTIONS,
    MEMORY_LEVELS,
    ReproError,
    SystemConfig,
)
from .jobs import Job, JobState, UsageTrace
from .metrics import (
    JobRecord,
    SimulationResult,
    ecdf,
    normalized_throughput,
    throughput_per_dollar,
)
from .policies import (
    BaselinePolicy,
    DynamicDisaggregatedPolicy,
    POLICIES,
    StaticDisaggregatedPolicy,
    make_policy,
)
from .scheduler import simulate
from .slowdown import AppProfile, ContentionModel, profile_pool
from .traces import (
    SWFTrace,
    Workload,
    grizzly_workload,
    synthetic_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AppProfile",
    "BaselinePolicy",
    "Cluster",
    "ContentionModel",
    "DynamicDisaggregatedPolicy",
    "Engine",
    "EventKind",
    "Job",
    "JobAllocation",
    "JobRecord",
    "JobState",
    "LARGE_NODE_FRACTIONS",
    "MEMORY_LEVELS",
    "MemoryPool",
    "Node",
    "POLICIES",
    "ReproError",
    "SWFTrace",
    "SimulationResult",
    "StaticDisaggregatedPolicy",
    "SystemConfig",
    "Torus",
    "UsageTrace",
    "Workload",
    "ecdf",
    "grizzly_workload",
    "make_policy",
    "normalized_throughput",
    "profile_pool",
    "simulate",
    "synthetic_workload",
    "throughput_per_dollar",
]
